//! The metered Pregel loop.
//!
//! The superstep hot path is built around two ideas:
//!
//! * **Run-scoped indexes** (the private `ScanIndex`): everything the loop
//!   would otherwise resolve per message — each vertex's master ("home")
//!   partition including the isolated-vertex hash fallback,
//!   partition→executor mapping, and the per-partition grouping of local
//!   vertices by home — is precomputed once from the [`PartitionedGraph`],
//!   and endpoint resolution is a single load from the borrowed
//!   local→global table, so supersteps do zero binary searches, routing
//!   lookups, or hashing.
//! * **Buffer reuse**: the inbox, per-partition partial-aggregate buffers,
//!   and activity bitsets are allocated once per run and cleared in place
//!   (the shuffle *takes* every partial and the apply *takes* every inbox
//!   entry, so the buffers self-clean), eliminating the per-superstep
//!   O(vertices + replicas) allocation churn.
//!
//! All three phases — scan, shuffle, apply/broadcast — run on the worker
//! pool. Scan parallelises over edge partitions; shuffle and apply
//! parallelise over *home* partitions, each thread owning a disjoint set of
//! vertices, with per-thread integral metering deltas merged afterwards.
//! Because every ledger quantity is an integer counter and each vertex's
//! messages merge in ascending source-partition order in every mode, the
//! parallel executors are bit-identical to sequential execution in both
//! vertex states and the metered [`SimReport`].

use cutfit_cluster::{ClusterConfig, ClusterSim, SimError, SimReport, SuperstepLedger};
use cutfit_graph::types::PartId;
use cutfit_graph::VertexId;
use cutfit_partition::{PartitionedGraph, NO_PART};
use cutfit_util::exec::{run_chunked, run_ranges, DisjointSlice};
use cutfit_util::hash::hash64;

use crate::program::{ActiveDirection, InitCtx, Messages, Triplet, VertexProgram};

/// How partitions are scanned within a superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorMode {
    /// One partition after another on the calling thread.
    Sequential,
    /// All phases (scan, shuffle, apply) run on a pool of OS threads.
    /// Results are bit-identical to sequential execution: threads own
    /// disjoint partition/vertex sets, merges happen in deterministic
    /// source-partition order, and all metering is integral.
    Parallel {
        /// Number of worker threads.
        threads: usize,
    },
    /// Like [`ExecutorMode::Parallel`] with the pool sized from
    /// [`std::thread::available_parallelism`].
    Auto,
}

impl ExecutorMode {
    /// Number of worker threads this mode resolves to (≥ 1).
    pub fn threads(&self) -> usize {
        match self {
            ExecutorMode::Sequential => 1,
            ExecutorMode::Parallel { threads } => (*threads).max(1),
            ExecutorMode::Auto => cutfit_util::exec::auto_threads(),
        }
    }
}

/// Engine options.
#[derive(Debug, Clone)]
pub struct PregelConfig {
    /// Maximum number of message supersteps (the paper runs PR and CC for
    /// 10 iterations).
    pub max_iterations: u64,
    /// Executor mode for the scan/shuffle/apply phases.
    pub executor: ExecutorMode,
    /// Whether to charge the initial dataset load from storage.
    pub charge_initial_load: bool,
}

impl Default for PregelConfig {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            executor: ExecutorMode::Sequential,
            charge_initial_load: true,
        }
    }
}

/// Outcome of a Pregel run.
#[derive(Debug, Clone)]
pub struct PregelResult<V> {
    /// Final state of every vertex (isolated vertices hold their
    /// initial-apply value).
    pub states: Vec<V>,
    /// Message supersteps executed (not counting setup).
    pub supersteps: u64,
    /// True if the computation reached a fixpoint (no messages), false if
    /// it stopped at `max_iterations`.
    pub converged: bool,
    /// Simulated-cluster accounting.
    pub sim: SimReport,
}

/// Per-partition slice of the run-scoped index.
struct PartIndex<'a> {
    /// The partition's edges as (local src, local dst), borrowed — copying
    /// (or widening) them per run costs more memory traffic than the
    /// single L1-resident `globals` load it would save.
    edges: &'a [(u32, u32)],
    /// Local→global id table, borrowed from the partition: endpoint
    /// resolution is one array load, never a binary search.
    globals: &'a [VertexId],
    /// CSR offsets into `home_locals`, one group per home partition.
    home_offsets: Vec<u32>,
    /// Local vertex indices grouped by the home partition of their global
    /// vertex, ascending within each group.
    home_locals: Vec<u32>,
    /// Bytes of partition structure resident every superstep.
    structure_bytes: u64,
}

impl PartIndex<'_> {
    /// Local indices of this partition whose vertices are mastered at `q`.
    #[inline]
    fn locals_of_home(&self, q: usize) -> &[u32] {
        &self.home_locals[self.home_offsets[q] as usize..self.home_offsets[q + 1] as usize]
    }
}

/// Immutable run-scoped index precomputed from the [`PartitionedGraph`] so
/// the superstep loop does no routing lookups, hashing, or binary searches.
struct ScanIndex<'a> {
    /// Master partition per vertex, with the isolated-vertex hash fallback
    /// folded in (GraphX hash-partitions the vertex RDD; vertices without
    /// edges still live somewhere).
    home: Vec<PartId>,
    /// Executor hosting each partition.
    exec_of_part: Vec<u32>,
    /// Per-partition edge/vertex tables and local groupings.
    parts: Vec<PartIndex<'a>>,
    /// CSR offsets into `home_verts`, one group per home partition.
    vert_offsets: Vec<u64>,
    /// All vertex ids grouped by home partition, ascending within groups.
    home_verts: Vec<VertexId>,
}

impl<'a> ScanIndex<'a> {
    /// Builds the index. The home-sharded groupings (`home_locals`,
    /// `home_verts`) are only needed by the multi-threaded shuffle/apply —
    /// the single-thread path sweeps linearly — so they are built only when
    /// `shards` is set.
    fn build(pg: &'a PartitionedGraph, cluster: &ClusterConfig, shards: bool) -> Self {
        let n = pg.num_vertices() as usize;
        let np = pg.num_parts() as usize;
        let home: Vec<PartId> = pg
            .masters()
            .iter()
            .enumerate()
            .map(|(v, &m)| {
                if m == NO_PART {
                    (hash64(v as u64) % np as u64) as PartId
                } else {
                    m
                }
            })
            .collect();
        let exec_of_part: Vec<u32> = (0..np as u32).map(|p| cluster.executor_of(p)).collect();

        let parts = pg
            .parts()
            .iter()
            .map(|part| {
                let (home_offsets, home_locals) = if shards {
                    // Counting sort of local indices by home partition:
                    // local order is preserved within each group, so
                    // per-vertex merge order stays source-partition-
                    // ascending in every mode.
                    let mut offsets = vec![0u32; np + 1];
                    for &v in &part.vertices {
                        offsets[home[v as usize] as usize + 1] += 1;
                    }
                    for q in 0..np {
                        offsets[q + 1] += offsets[q];
                    }
                    let mut cursor = offsets.clone();
                    let mut locals = vec![0u32; part.vertices.len()];
                    for (local, &v) in part.vertices.iter().enumerate() {
                        let q = home[v as usize] as usize;
                        locals[cursor[q] as usize] = local as u32;
                        cursor[q] += 1;
                    }
                    (offsets, locals)
                } else {
                    (Vec::new(), Vec::new())
                };
                PartIndex {
                    edges: &part.edges,
                    globals: &part.vertices,
                    home_offsets,
                    home_locals,
                    structure_bytes: part.structure_bytes(),
                }
            })
            .collect();

        let (vert_offsets, home_verts) = if shards {
            let mut offsets = vec![0u64; np + 1];
            for &h in &home {
                offsets[h as usize + 1] += 1;
            }
            for q in 0..np {
                offsets[q + 1] += offsets[q];
            }
            let mut cursor = offsets.clone();
            let mut verts = vec![0u64; n];
            for (v, &h) in home.iter().enumerate() {
                verts[cursor[h as usize] as usize] = v as VertexId;
                cursor[h as usize] += 1;
            }
            (offsets, verts)
        } else {
            (Vec::new(), Vec::new())
        };

        Self {
            home,
            exec_of_part,
            parts,
            vert_offsets,
            home_verts,
        }
    }

    /// All vertices mastered at home partition `q`, ascending.
    #[inline]
    fn verts_of_home(&self, q: usize) -> &[VertexId] {
        &self.home_verts[self.vert_offsets[q] as usize..self.vert_offsets[q + 1] as usize]
    }
}

/// Per-thread metering accumulator. Every field is an exact integer
/// counter, so merging thread deltas in any order reproduces the sequential
/// ledger bit for bit.
struct MeterDelta {
    executors: usize,
    /// Row-major `executors × executors` byte/message matrices, allocated
    /// on the first recorded transfer (mirrors [`SuperstepLedger`]'s lazy
    /// hardening: a huge executor grid must not cost `executors²` memory
    /// per worker thread).
    exec_bytes: Vec<u64>,
    exec_msgs: Vec<u64>,
    /// Per-partition counters.
    vertex_ops: Vec<u64>,
    local_bytes: Vec<u64>,
    /// Per-partition resident-state deltas (signed bytes).
    resident: Vec<i64>,
    /// Messages shuffled by this thread.
    msgs: u64,
}

impl MeterDelta {
    fn new(executors: usize, num_parts: usize) -> Self {
        Self {
            executors,
            exec_bytes: Vec::new(),
            exec_msgs: Vec::new(),
            vertex_ops: vec![0; num_parts],
            local_bytes: vec![0; num_parts],
            resident: vec![0; num_parts],
            msgs: 0,
        }
    }

    fn reset(&mut self) {
        self.exec_bytes.fill(0);
        self.exec_msgs.fill(0);
        self.vertex_ops.fill(0);
        self.local_bytes.fill(0);
        self.resident.fill(0);
        self.msgs = 0;
    }

    #[inline]
    fn send_exec(&mut self, from_exec: u32, to_exec: u32, msgs: u64, bytes: u64) {
        if self.exec_bytes.is_empty() {
            let cells = self.executors * self.executors;
            self.exec_bytes = vec![0; cells];
            self.exec_msgs = vec![0; cells];
        }
        let idx = from_exec as usize * self.executors + to_exec as usize;
        self.exec_bytes[idx] += bytes;
        self.exec_msgs[idx] += msgs;
    }

    fn flush_ledger(&self, ledger: &mut SuperstepLedger) {
        for (p, &ops) in self.vertex_ops.iter().enumerate() {
            if ops > 0 {
                ledger.vertex_ops(p as u32, ops);
            }
        }
        for (p, &bytes) in self.local_bytes.iter().enumerate() {
            if bytes > 0 {
                ledger.local_bytes(p as u32, bytes);
            }
        }
        if self.exec_bytes.is_empty() {
            return;
        }
        for from in 0..self.executors {
            for to in 0..self.executors {
                let idx = from * self.executors + to;
                if self.exec_msgs[idx] > 0 || self.exec_bytes[idx] > 0 {
                    ledger.send_exec(
                        from as u32,
                        to as u32,
                        self.exec_msgs[idx],
                        self.exec_bytes[idx],
                    );
                }
            }
        }
    }

    fn flush_resident(&self, sim: &mut ClusterSim) {
        for (p, &delta) in self.resident.iter().enumerate() {
            sim.adjust_resident(p as u32, delta);
        }
    }
}

/// Resets every [`MeterDelta`] and runs `work` over `0..num_parts` on the
/// shared worker-pool abstraction ([`run_chunked`]), one contiguous range
/// and one delta per thread.
fn run_on_pool<F>(num_parts: usize, threads: usize, deltas: &mut [MeterDelta], work: F)
where
    F: Fn(std::ops::Range<usize>, &mut MeterDelta) + Sync,
{
    for delta in deltas.iter_mut() {
        delta.reset();
    }
    run_chunked(num_parts, threads, deltas, work);
}

/// Runs `program` over `pg` on the simulated `cluster`.
///
/// Returns [`SimError::OutOfMemory`] if the modelled memory demand exceeds
/// an executor's budget — partial results are discarded, as they would be
/// on the real system.
pub fn run_pregel<P: VertexProgram>(
    program: &P,
    pg: &PartitionedGraph,
    cluster: &ClusterConfig,
    opts: &PregelConfig,
) -> Result<PregelResult<P::State>, SimError> {
    let n = pg.num_vertices() as usize;
    let np = pg.num_parts() as usize;
    let threads = opts.executor.threads().min(np.max(1));
    let mut sim = ClusterSim::new(cluster.clone(), pg.num_parts());
    let msg_overhead = cluster.cost.message_overhead_bytes;

    let index = ScanIndex::build(pg, cluster, threads > 1);

    // Global degrees, derived from the pre-resolved endpoints.
    let mut out_deg = vec![0u32; n];
    let mut in_deg = vec![0u32; n];
    for part in &index.parts {
        for &(ls, ld) in part.edges {
            out_deg[part.globals[ls as usize] as usize] += 1;
            in_deg[part.globals[ld as usize] as usize] += 1;
        }
    }

    if opts.charge_initial_load {
        // Edge list (two ids per edge) plus one state record per vertex.
        sim.charge_load(pg.num_edges() * 16 + n as u64 * 8);
    }

    // --- Setup: initial apply on every vertex + replica broadcast. ---
    let ctx = InitCtx {
        out_degrees: &out_deg,
        in_degrees: &in_deg,
        num_vertices: pg.num_vertices(),
    };
    let init_msg = program.initial_msg();
    let mut states: Vec<P::State> = (0..n as u64)
        .map(|v| {
            let s = program.initial_state(v, &ctx);
            program.apply(v, &s, &init_msg)
        })
        .collect();
    for v in 0..n as u64 {
        let home = index.home[v as usize];
        sim.ledger().vertex_ops(home, 1);
        let replicas = pg.routing().parts_of(v);
        if replicas.len() > 1 {
            let bytes = program.state_bytes(&states[v as usize]) + msg_overhead;
            let master_exec = index.exec_of_part[home as usize];
            for &p in replicas {
                if p != home {
                    sim.ledger()
                        .send_exec(master_exec, index.exec_of_part[p as usize], 1, bytes);
                }
            }
        }
    }

    // --- Residency: structure + replica states, declared once and updated
    //     incrementally; re-summing every replica per superstep is gone. ---
    let fixed_state = program.fixed_state_bytes();
    let mut resident: Vec<u64> = index.parts.iter().map(|pi| pi.structure_bytes).collect();
    for (p, part) in pg.parts().iter().enumerate() {
        resident[p] += match fixed_state {
            Some(size) => part.num_vertices() * size,
            None => part
                .vertices
                .iter()
                .map(|&v| program.state_bytes(&states[v as usize]))
                .sum(),
        };
    }
    // Isolated vertices have no replica, but their state still occupies the
    // hash-fallback home (the vertex RDD is hash-partitioned regardless of
    // edges) — and since messages only travel along edges, those states
    // never change after setup: charge them once.
    for (v, &master) in pg.masters().iter().enumerate() {
        if master == NO_PART {
            resident[index.home[v] as usize] += program.state_bytes(&states[v]);
        }
    }
    for (p, &bytes) in resident.iter().enumerate() {
        sim.set_resident(p as PartId, bytes);
    }
    drop(resident);
    sim.end_superstep()?;

    // --- Run-scoped buffers, allocated once and cleared in place. ---
    let mut partials: Vec<Vec<Option<P::Msg>>> = pg
        .parts()
        .iter()
        .map(|part| {
            std::iter::repeat_with(|| None)
                .take(part.vertices.len())
                .collect()
        })
        .collect();
    let mut matched = vec![0u64; np];
    let mut inbox: Vec<Option<P::Msg>> = std::iter::repeat_with(|| None).take(n).collect();
    let mut active = vec![true; n];
    let mut next_active = vec![false; n];
    let executors = cluster.executors as usize;
    let mut deltas: Vec<MeterDelta> = (0..threads)
        .map(|_| MeterDelta::new(executors, np))
        .collect();

    // --- Superstep loop. ---
    let mut supersteps = 0u64;
    let mut converged = false;
    while supersteps < opts.max_iterations {
        // 1. Scan: per-partition pre-aggregated messages, in parallel over
        //    edge partitions.
        scan_all(
            program,
            &index,
            &states,
            &active,
            &out_deg,
            &in_deg,
            &mut partials,
            &mut matched,
            threads,
        );
        for (p, &m) in matched.iter().enumerate() {
            sim.ledger().edge_scans(p as PartId, m);
        }

        // 2. Shuffle partials to masters. Single-threaded: one linear sweep
        //    over each partition's partial buffer (best cache behaviour).
        //    Multi-threaded: each thread owns a disjoint set of *home*
        //    partitions and drains, for each of them, the matching locals
        //    of every source partition in ascending order. Both visit each
        //    vertex's messages in ascending source-partition order, so the
        //    merged inbox is bit-identical either way.
        if threads <= 1 {
            let delta = &mut deltas[0];
            delta.reset();
            for (p, partial) in partials.iter_mut().enumerate() {
                let part = &index.parts[p];
                let from_exec = index.exec_of_part[p];
                for (local, slot) in partial.iter_mut().enumerate() {
                    let Some(msg) = slot.take() else { continue };
                    let v = part.globals[local] as usize;
                    let q = index.home[v] as usize;
                    let bytes = program.msg_bytes(&msg) + msg_overhead;
                    delta.send_exec(from_exec, index.exec_of_part[q], 1, bytes);
                    delta.local_bytes[q] += bytes;
                    delta.msgs += 1;
                    let entry = &mut inbox[v];
                    *entry = Some(match entry.take() {
                        Some(acc) => program.merge(acc, msg),
                        None => msg,
                    });
                }
            }
        } else {
            let inbox_cells = DisjointSlice::new(&mut inbox);
            let partial_cells: Vec<DisjointSlice<'_, Option<P::Msg>>> =
                partials.iter_mut().map(|p| DisjointSlice::new(p)).collect();
            run_on_pool(np, threads, &mut deltas, |homes, delta| {
                for q in homes {
                    let to_exec = index.exec_of_part[q];
                    for (p, part) in index.parts.iter().enumerate() {
                        let from_exec = index.exec_of_part[p];
                        for &local in part.locals_of_home(q) {
                            // SAFETY: (p, local) resolves to a vertex whose
                            // home is q, and q belongs to this thread only.
                            let slot = unsafe { partial_cells[p].get_mut(local as usize) };
                            let Some(msg) = slot.take() else { continue };
                            let v = part.globals[local as usize];
                            let bytes = program.msg_bytes(&msg) + msg_overhead;
                            delta.send_exec(from_exec, to_exec, 1, bytes);
                            delta.local_bytes[q] += bytes;
                            delta.msgs += 1;
                            // SAFETY: v's home is q — disjoint across threads.
                            let entry = unsafe { inbox_cells.get_mut(v as usize) };
                            *entry = Some(match entry.take() {
                                Some(acc) => program.merge(acc, msg),
                                None => msg,
                            });
                        }
                    }
                }
            });
        }
        let msg_count: u64 = deltas.iter().map(|d| d.msgs).sum();
        for delta in &deltas {
            delta.flush_ledger(sim.ledger());
        }

        if msg_count == 0 {
            converged = true;
            sim.end_superstep()?;
            break;
        }

        // 3. Apply at masters; 4. broadcast updated states to mirrors.
        //    Single-threaded: one linear inbox sweep. Multi-threaded: over
        //    disjoint home-partition shards. Residency is tracked as signed
        //    per-partition deltas (exactly zero for fixed-size states, so
        //    that bookkeeping is skipped entirely); applies are independent
        //    per vertex, so both orders produce identical states and bills.
        next_active.fill(program.always_active());
        if threads <= 1 {
            let delta = &mut deltas[0];
            delta.reset();
            for (v, slot) in inbox.iter_mut().enumerate() {
                let Some(msg) = slot.take() else { continue };
                let q = index.home[v] as usize;
                let state = &mut states[v];
                let old_bytes = if fixed_state.is_none() {
                    program.state_bytes(state)
                } else {
                    0
                };
                *state = program.apply(v as VertexId, state, &msg);
                next_active[v] = true;
                let state_size = program.state_bytes(state);
                delta.vertex_ops[q] += 1;
                delta.local_bytes[q] += state_size;
                let bytes = state_size + msg_overhead;
                let master_exec = index.exec_of_part[q];
                for &p in pg.routing().parts_of(v as VertexId) {
                    if p as usize != q {
                        delta.send_exec(master_exec, index.exec_of_part[p as usize], 1, bytes);
                    }
                }
                if fixed_state.is_none() {
                    let diff = state_size as i64 - old_bytes as i64;
                    if diff != 0 {
                        for &p in pg.routing().parts_of(v as VertexId) {
                            delta.resident[p as usize] += diff;
                        }
                    }
                }
            }
        } else {
            let inbox_cells = DisjointSlice::new(&mut inbox);
            let state_cells = DisjointSlice::new(&mut states);
            let active_cells = DisjointSlice::new(&mut next_active);
            run_on_pool(np, threads, &mut deltas, |homes, delta| {
                for q in homes {
                    let master_exec = index.exec_of_part[q];
                    for &v in index.verts_of_home(q) {
                        // SAFETY: v's home is q, owned by this thread only;
                        // the same argument covers states and next_active.
                        let slot = unsafe { inbox_cells.get_mut(v as usize) };
                        let Some(msg) = slot.take() else { continue };
                        let state = unsafe { state_cells.get_mut(v as usize) };
                        let old_bytes = if fixed_state.is_none() {
                            program.state_bytes(state)
                        } else {
                            0
                        };
                        *state = program.apply(v, state, &msg);
                        unsafe { *active_cells.get_mut(v as usize) = true };
                        let state_size = program.state_bytes(state);
                        delta.vertex_ops[q] += 1;
                        delta.local_bytes[q] += state_size;
                        let bytes = state_size + msg_overhead;
                        for &p in pg.routing().parts_of(v) {
                            if p as usize != q {
                                delta.send_exec(
                                    master_exec,
                                    index.exec_of_part[p as usize],
                                    1,
                                    bytes,
                                );
                            }
                        }
                        if fixed_state.is_none() {
                            let diff = state_size as i64 - old_bytes as i64;
                            if diff != 0 {
                                for &p in pg.routing().parts_of(v) {
                                    delta.resident[p as usize] += diff;
                                }
                            }
                        }
                    }
                }
            });
        }
        for delta in &deltas {
            delta.flush_ledger(sim.ledger());
            delta.flush_resident(&mut sim);
        }
        std::mem::swap(&mut active, &mut next_active);
        supersteps += 1;
        sim.end_superstep()?;
    }

    Ok(PregelResult {
        states,
        supersteps,
        converged,
        sim: sim.into_report(),
    })
}

/// Scans all partitions, sequentially or on the pool, writing per-partition
/// pre-aggregated messages into the reusable `partials` buffers and the
/// matched-edge counts (for metering) into `matched`.
#[allow(clippy::too_many_arguments)]
fn scan_all<P: VertexProgram>(
    program: &P,
    index: &ScanIndex,
    states: &[P::State],
    active: &[bool],
    out_deg: &[u32],
    in_deg: &[u32],
    partials: &mut [Vec<Option<P::Msg>>],
    matched: &mut [u64],
    threads: usize,
) {
    if threads <= 1 {
        for ((part, partial), m) in index.parts.iter().zip(partials).zip(matched) {
            *m = scan_partition(program, part, states, active, out_deg, in_deg, partial);
        }
        return;
    }
    let partial_cells = DisjointSlice::new(partials);
    let matched_cells = DisjointSlice::new(matched);
    run_ranges(index.parts.len(), threads, |parts| {
        for p in parts {
            // SAFETY: partition ranges are disjoint across threads, so each
            // partition's partial buffer and matched slot has one writer.
            let partial = unsafe { partial_cells.get_mut(p) };
            let m = scan_partition(
                program,
                &index.parts[p],
                states,
                active,
                out_deg,
                in_deg,
                partial,
            );
            unsafe { *matched_cells.get_mut(p) = m };
        }
    });
}

/// Scans one partition: map-side combine into the partition's reusable
/// local-vertex-indexed buffer (left all-`None` by the previous shuffle).
fn scan_partition<P: VertexProgram>(
    program: &P,
    part: &PartIndex,
    states: &[P::State],
    active: &[bool],
    out_deg: &[u32],
    in_deg: &[u32],
    out: &mut [Option<P::Msg>],
) -> u64 {
    let mut matched = 0u64;
    let dir = program.active_direction();
    for &(ls, ld) in part.edges {
        let src = part.globals[ls as usize];
        let dst = part.globals[ld as usize];
        let s = src as usize;
        let d = dst as usize;
        let scan = match dir {
            ActiveDirection::Either => active[s] || active[d],
            ActiveDirection::Out => active[s],
            ActiveDirection::In => active[d],
            ActiveDirection::Both => active[s] && active[d],
        };
        if !scan {
            continue;
        }
        matched += 1;
        let triplet = Triplet {
            src,
            dst,
            src_state: &states[s],
            dst_state: &states[d],
            src_out_degree: out_deg[s],
            dst_in_degree: in_deg[d],
        };
        match program.send(&triplet) {
            Messages::None => {}
            Messages::ToSrc(m) => emit(program, &mut out[ls as usize], m),
            Messages::ToDst(m) => emit(program, &mut out[ld as usize], m),
            Messages::Both(ms, md) => {
                emit(program, &mut out[ls as usize], ms);
                emit(program, &mut out[ld as usize], md);
            }
        }
    }
    matched
}

#[inline]
fn emit<P: VertexProgram>(program: &P, slot: &mut Option<P::Msg>, msg: P::Msg) {
    *slot = Some(match slot.take() {
        Some(acc) => program.merge(acc, msg),
        None => msg,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cutfit_graph::{Edge, Graph};
    use cutfit_partition::{GraphXStrategy, Partitioner};

    /// Max-id label propagation: converges to the component-wise max.
    struct MaxLabel;
    impl VertexProgram for MaxLabel {
        type State = u64;
        type Msg = u64;
        fn name(&self) -> &'static str {
            "max-label"
        }
        fn initial_state(&self, v: VertexId, _ctx: &InitCtx<'_>) -> u64 {
            v
        }
        fn initial_msg(&self) -> u64 {
            0
        }
        fn apply(&self, _v: VertexId, state: &u64, msg: &u64) -> u64 {
            *state.max(msg)
        }
        fn send(&self, t: &Triplet<'_, u64>) -> Messages<u64> {
            match (t.src_state > t.dst_state, t.dst_state > t.src_state) {
                (true, _) => Messages::ToDst(*t.src_state),
                (_, true) => Messages::ToSrc(*t.dst_state),
                _ => Messages::None,
            }
        }
        fn merge(&self, a: u64, b: u64) -> u64 {
            a.max(b)
        }
        fn fixed_state_bytes(&self) -> Option<u64> {
            Some(8)
        }
    }

    fn two_components() -> Graph {
        Graph::new(
            7,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(4, 5),
            ],
        )
    }

    fn cfg() -> ClusterConfig {
        ClusterConfig::paper_cluster()
    }

    #[test]
    fn max_label_converges_per_component() {
        let pg = GraphXStrategy::RandomVertexCut.partition(&two_components(), 4);
        let r = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.states, vec![3, 3, 3, 3, 5, 5, 6]);
        assert!(r.supersteps >= 3, "information must travel the path");
        assert!(r.sim.total_seconds > 0.0);
    }

    #[test]
    fn isolated_vertices_keep_initial_state() {
        let g = Graph::new(3, vec![Edge::new(0, 1)]);
        let pg = GraphXStrategy::SourceCut.partition(&g, 2);
        let r = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        assert_eq!(r.states[2], 2);
    }

    #[test]
    fn max_iterations_caps_supersteps() {
        let g = Graph::new(50, (0..49).map(|v| Edge::new(v, v + 1)).collect());
        let pg = GraphXStrategy::EdgePartition1D.partition(&g, 4);
        let opts = PregelConfig {
            max_iterations: 5,
            ..Default::default()
        };
        let r = run_pregel(&MaxLabel, &pg, &cfg(), &opts).unwrap();
        assert_eq!(r.supersteps, 5);
        assert!(!r.converged);
    }

    #[test]
    fn parallel_equals_sequential() {
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 9);
        let pg = GraphXStrategy::EdgePartition2D.partition(&g, 16);
        let seq = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        let par = run_pregel(
            &MaxLabel,
            &pg,
            &cfg(),
            &PregelConfig {
                executor: ExecutorMode::Parallel { threads: 4 },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(seq.states, par.states);
        assert_eq!(seq.supersteps, par.supersteps);
        assert_eq!(seq.sim, par.sim, "metering must be identical too");
    }

    #[test]
    fn auto_equals_sequential() {
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 8);
        let pg = GraphXStrategy::CanonicalRandomVertexCut.partition(&g, 8);
        let seq = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        let auto = run_pregel(
            &MaxLabel,
            &pg,
            &cfg(),
            &PregelConfig {
                executor: ExecutorMode::Auto,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(ExecutorMode::Auto.threads() >= 1);
        assert_eq!(seq.states, auto.states);
        assert_eq!(seq.sim, auto.sim);
    }

    /// MaxLabel with a fat fixed-size state, for memory-accounting tests.
    struct FatLabel;
    impl VertexProgram for FatLabel {
        type State = u64;
        type Msg = u64;
        fn name(&self) -> &'static str {
            "fat-label"
        }
        fn initial_state(&self, v: VertexId, _ctx: &InitCtx<'_>) -> u64 {
            v
        }
        fn initial_msg(&self) -> u64 {
            0
        }
        fn apply(&self, _v: VertexId, state: &u64, msg: &u64) -> u64 {
            *state.max(msg)
        }
        fn send(&self, t: &Triplet<'_, u64>) -> Messages<u64> {
            if t.src_state > t.dst_state {
                Messages::ToDst(*t.src_state)
            } else {
                Messages::None
            }
        }
        fn merge(&self, a: u64, b: u64) -> u64 {
            a.max(b)
        }
        fn state_bytes(&self, _state: &u64) -> u64 {
            1 << 20 // 1 MB per vertex
        }
        fn fixed_state_bytes(&self) -> Option<u64> {
            Some(1 << 20)
        }
    }

    #[test]
    fn isolated_vertices_count_toward_resident_memory() {
        // Same single edge; one graph carries 98 extra isolated vertices.
        // Their 1 MB states must surface in peak executor memory, charged at
        // the hash-fallback homes.
        let small = Graph::new(2, vec![Edge::new(0, 1)]);
        let sparse = Graph::new(100, vec![Edge::new(0, 1)]);
        let run = |g: &Graph| {
            let pg = GraphXStrategy::RandomVertexCut.partition(g, 4);
            run_pregel(&FatLabel, &pg, &cfg(), &PregelConfig::default()).unwrap()
        };
        let base = run(&small).sim.peak_executor_memory_gb;
        let with_isolated = run(&sparse).sim.peak_executor_memory_gb;
        // 98 isolated MB spread over 4 partitions: the busiest executor
        // gains at least a couple dozen MB even under a skewed hash.
        assert!(
            with_isolated > base + 0.02,
            "isolated vertices must be resident somewhere: {with_isolated} vs {base}"
        );
    }

    /// A program whose state grows as labels arrive — exercises the
    /// incremental (delta-based) residency path for variable-size states.
    struct GrowingTrail;
    impl VertexProgram for GrowingTrail {
        type State = Vec<u64>;
        type Msg = u64;
        fn name(&self) -> &'static str {
            "growing-trail"
        }
        fn initial_state(&self, v: VertexId, _ctx: &InitCtx<'_>) -> Vec<u64> {
            vec![v]
        }
        fn initial_msg(&self) -> u64 {
            0
        }
        fn apply(&self, _v: VertexId, state: &Vec<u64>, msg: &u64) -> Vec<u64> {
            let mut next = state.clone();
            if next.last() != Some(msg) {
                next.push(*msg);
            }
            next
        }
        fn send(&self, t: &Triplet<'_, Vec<u64>>) -> Messages<u64> {
            let (s, d) = (t.src_state.last().unwrap(), t.dst_state.last().unwrap());
            if s > d {
                Messages::ToDst(*s)
            } else {
                Messages::None
            }
        }
        fn merge(&self, a: u64, b: u64) -> u64 {
            a.max(b)
        }
        fn state_bytes(&self, state: &Vec<u64>) -> u64 {
            8 * state.len() as u64
        }
    }

    #[test]
    fn variable_state_metering_is_mode_independent() {
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 8);
        let pg = GraphXStrategy::EdgePartition1D.partition(&g, 8);
        let seq = run_pregel(&GrowingTrail, &pg, &cfg(), &PregelConfig::default()).unwrap();
        let par = run_pregel(
            &GrowingTrail,
            &pg,
            &cfg(),
            &PregelConfig {
                executor: ExecutorMode::Parallel { threads: 3 },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(seq.states, par.states);
        assert_eq!(
            seq.sim, par.sim,
            "incremental residency deltas must be order-independent"
        );
        assert!(
            seq.sim.peak_executor_memory_gb > 0.0,
            "growing states must register in memory accounting"
        );
    }

    #[test]
    fn worse_partitioning_ships_more_remote_bytes() {
        // CRVC collocates both directions; RVC splits them — on a symmetric
        // graph RVC must replicate more and thus ship more bytes.
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 11).symmetrized();
        let crvc = GraphXStrategy::CanonicalRandomVertexCut.partition(&g, 32);
        let rvc = GraphXStrategy::RandomVertexCut.partition(&g, 32);
        let opts = PregelConfig {
            max_iterations: 3,
            ..Default::default()
        };
        let a = run_pregel(&MaxLabel, &crvc, &cfg(), &opts).unwrap();
        let b = run_pregel(&MaxLabel, &rvc, &cfg(), &opts).unwrap();
        assert!(
            b.sim.remote_bytes > a.sim.remote_bytes,
            "rvc {} vs crvc {}",
            b.sim.remote_bytes,
            a.sim.remote_bytes
        );
    }

    #[test]
    fn activity_tracking_reduces_scans_over_time() {
        // After convergence regions stop being scanned: total messages are
        // finite even with a generous iteration cap.
        let g = two_components();
        let pg = GraphXStrategy::CanonicalRandomVertexCut.partition(&g, 2);
        let r = run_pregel(
            &MaxLabel,
            &pg,
            &cfg(),
            &PregelConfig {
                max_iterations: 1000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.converged);
        assert!(r.supersteps < 10);
    }

    #[test]
    fn oom_is_reported() {
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 10);
        let pg = GraphXStrategy::RandomVertexCut.partition(&g, 8);
        let tiny = ClusterConfig {
            executor_memory_gb: 1e-6,
            ..ClusterConfig::paper_cluster()
        };
        let err = run_pregel(&MaxLabel, &pg, &tiny, &PregelConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
    }

    #[test]
    fn executor_mode_resolves_thread_counts() {
        assert_eq!(ExecutorMode::Sequential.threads(), 1);
        assert_eq!(ExecutorMode::Parallel { threads: 0 }.threads(), 1);
        assert_eq!(ExecutorMode::Parallel { threads: 6 }.threads(), 6);
        assert!(ExecutorMode::Auto.threads() >= 1);
    }
}
