//! The metered Pregel loop.
//!
//! The superstep hot path is built around two ideas:
//!
//! * **Run-scoped indexes** (the private `ScanIndex`): everything the loop
//!   would otherwise resolve per message — each vertex's master ("home")
//!   partition including the isolated-vertex hash fallback,
//!   partition→executor mapping, and the per-partition grouping of local
//!   vertices by home — is precomputed once from the [`PartitionedGraph`],
//!   and endpoint resolution is a single load from the borrowed
//!   local→global table, so supersteps do zero binary searches, routing
//!   lookups, or hashing.
//! * **Buffer reuse**: the inbox, per-partition partial-aggregate buffers,
//!   and activity bitsets are allocated once per run and cleared in place
//!   (the shuffle *takes* every partial and the apply *takes* every inbox
//!   entry, so the buffers self-clean), eliminating the per-superstep
//!   O(vertices + replicas) allocation churn.
//!
//! All three phases — scan, shuffle, apply/broadcast — run on the worker
//! pool. Scan parallelises over edge partitions; shuffle and apply
//! parallelise over *home* partitions, each thread owning a disjoint set of
//! vertices, with per-thread integral metering deltas merged afterwards.
//! Because every ledger quantity is an integer counter and each vertex's
//! messages merge in ascending source-partition order in every mode, the
//! parallel executors are bit-identical to sequential execution in both
//! vertex states and the metered [`SimReport`].

use std::sync::Arc;

use cutfit_cluster::{ClusterConfig, ClusterSim, SimError, SimReport, SuperstepLedger};
use cutfit_graph::types::PartId;
use cutfit_graph::VertexId;
use cutfit_partition::{EdgePartition, PartitionedGraph, NO_PART};
use cutfit_util::exec::{run_chunked, run_ranges, DisjointSlice};
use cutfit_util::hash::hash64;
use cutfit_util::num::{part_index, vid_index};

use crate::frontier::{
    gather_edges, plan_sparse_scan, FrontierAdjacency, FrontierBuffers, ScanKind,
};
use crate::program::{ActiveDirection, InitCtx, Messages, Triplet, VertexProgram};

/// How partitions are scanned within a superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorMode {
    /// One partition after another on the calling thread.
    Sequential,
    /// All phases (scan, shuffle, apply) run on a pool of OS threads.
    /// Results are bit-identical to sequential execution: threads own
    /// disjoint partition/vertex sets, merges happen in deterministic
    /// source-partition order, and all metering is integral.
    Parallel {
        /// Number of worker threads.
        threads: usize,
    },
    /// Like [`ExecutorMode::Parallel`] with the pool sized from
    /// [`std::thread::available_parallelism`].
    Auto,
}

impl ExecutorMode {
    /// Number of worker threads this mode resolves to (≥ 1).
    pub fn threads(&self) -> usize {
        match self {
            ExecutorMode::Sequential => 1,
            ExecutorMode::Parallel { threads } => (*threads).max(1),
            ExecutorMode::Auto => cutfit_util::exec::auto_threads(),
        }
    }
}

/// How supersteps visit edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanMode {
    /// Walk every partition's full edge table each superstep, filtering on
    /// the activity bitset — GraphX's behaviour, O(V + E) per superstep
    /// regardless of how few vertices are still active.
    Dense,
    /// Always gather from the frontier's incident-edge lists — O(active)
    /// per superstep, but slower than dense when most vertices are active
    /// (the gather pays a sort). For testing and benchmarking.
    Sparse,
    /// Each partition picks dense or sparse per superstep by comparing its
    /// frontier-incident degree sum against its edge count. The default.
    Auto,
}

impl Default for ScanMode {
    fn default() -> Self {
        ScanMode::Auto
    }
}

/// Engine options.
#[derive(Debug, Clone)]
pub struct PregelConfig {
    /// Maximum number of message supersteps (the paper runs PR and CC for
    /// 10 iterations).
    pub max_iterations: u64,
    /// Executor mode for the scan/shuffle/apply phases.
    pub executor: ExecutorMode,
    /// Whether to charge the initial dataset load from storage.
    pub charge_initial_load: bool,
    /// Per-run override of the cluster scenario's checkpoint interval:
    /// `Some(n)` checkpoints every `n` supersteps (`Some(0)` disables),
    /// `None` defers to `ClusterConfig::scenario.checkpoint_interval`.
    /// Checkpoints are billed at superstep boundaries and truncate retained
    /// shuffle lineage — the `checkpointInterval` knob that keeps
    /// high-superstep jobs (the paper's SSSP) from lineage OOM, at a
    /// storage-write cost per checkpoint.
    pub checkpoint_interval: Option<u64>,
    /// How converging programs scan edges once activity drops; every mode
    /// is bit-identical in states and [`SimReport`] (the sparse path visits
    /// the same edges in the same per-slot order and meters the same
    /// quantities), so this knob only moves wall-clock time.
    pub scan_mode: ScanMode,
}

impl Default for PregelConfig {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            executor: ExecutorMode::Sequential,
            charge_initial_load: true,
            checkpoint_interval: None,
            scan_mode: ScanMode::Auto,
        }
    }
}

/// Outcome of a Pregel run.
#[derive(Debug, Clone)]
pub struct PregelResult<V> {
    /// Final state of every vertex (isolated vertices hold their
    /// initial-apply value).
    pub states: Vec<V>,
    /// Message supersteps executed (not counting setup).
    pub supersteps: u64,
    /// True if the computation reached a fixpoint (no messages), false if
    /// it stopped at `max_iterations`.
    pub converged: bool,
    /// Simulated-cluster accounting.
    pub sim: SimReport,
}

/// Per-partition slice of the run-scoped index. Edge and local→global
/// tables are *not* duplicated here — the loop reads them straight from the
/// [`PartitionedGraph`], which keeps the index self-contained (no borrows)
/// so a [`PreparedRun`] can own both the `Arc`'d graph and its index.
struct PartIndex {
    /// CSR offsets into `home_locals`, one group per home partition.
    home_offsets: Vec<u32>,
    /// Local vertex indices grouped by the home partition of their global
    /// vertex, ascending within each group.
    home_locals: Vec<u32>,
}

impl PartIndex {
    /// Local indices of this partition whose vertices are mastered at `q`.
    #[inline]
    fn locals_of_home(&self, q: usize) -> &[u32] {
        &self.home_locals[self.home_offsets[q] as usize..self.home_offsets[q + 1] as usize]
    }
}

/// Precomputed setup-superstep aggregates, used to meter the initial apply
/// + replica broadcast of **fixed-size-state** programs in O(partitions +
/// executor pairs) instead of O(vertices + replicas) per dispatch: the
/// per-message bill is then a constant, so only the counts matter — and
/// the counts are a property of the cut, not of the program.
struct SetupAggregates {
    /// Vertices mastered (hash fallback included) at each partition.
    home_counts: Vec<u64>,
    /// Isolated (`NO_PART`) vertices per hash-fallback home.
    isolated_counts: Vec<u64>,
    /// `((master_exec, mirror_exec), messages)` of the initial state
    /// broadcast, sparse and sorted (an executor-pair matrix would cost
    /// `executors²` memory on huge clusters).
    bcast_pairs: Vec<((u32, u32), u64)>,
}

/// Immutable run-scoped index precomputed from the [`PartitionedGraph`] so
/// the superstep loop does no routing lookups, hashing, or binary searches.
struct ScanIndex {
    /// Master partition per vertex, with the isolated-vertex hash fallback
    /// folded in (GraphX hash-partitions the vertex RDD; vertices without
    /// edges still live somewhere).
    home: Vec<PartId>,
    /// Executor hosting each partition.
    exec_of_part: Vec<u32>,
    /// Per-partition local groupings by home (empty unless sharded).
    parts: Vec<PartIndex>,
    /// Setup-superstep aggregates for fixed-size-state metering; `None`
    /// when the caller knows no fixed-size program will run (the O(V +
    /// replicas) aggregation pass would be pure waste there).
    setup: Option<SetupAggregates>,
    /// Frontier-driven sparse-scan index: the eager replica-local table
    /// plus lazily built per-partition incident-edge CSRs. `None` when the
    /// caller knows only dense scans will run (forced [`ScanMode::Dense`]
    /// or an always-active program).
    adjacency: Option<FrontierAdjacency>,
}

impl ScanIndex {
    /// Builds the index. The home-sharded grouping (`home_locals`) is only
    /// needed by the multi-threaded dense shuffle — the single-thread path
    /// sweeps linearly — so it is built only when `shards` is set. Likewise
    /// the setup aggregates are built only when `setup` is set: one-shot
    /// runs of variable-size-state programs take the per-vertex metering
    /// sweep and never read them. The sparse-scan adjacency is built only
    /// when `adjacency` is set.
    fn build(
        pg: &PartitionedGraph,
        cluster: &ClusterConfig,
        shards: bool,
        setup: bool,
        adjacency: bool,
    ) -> Self {
        let n = pg.num_vertices() as usize;
        let np = pg.num_parts() as usize;
        let home: Vec<PartId> = pg
            .masters()
            .iter()
            .enumerate()
            .map(|(v, &m)| {
                if m == NO_PART {
                    (hash64(v as u64) % np as u64) as PartId
                } else {
                    m
                }
            })
            .collect();
        let exec_of_part: Vec<u32> = (0..np as u32).map(|p| cluster.executor_of(p)).collect();

        let parts = pg
            .parts()
            .iter()
            .map(|part| {
                let (home_offsets, home_locals) = if shards {
                    // Counting sort of local indices by home partition:
                    // local order is preserved within each group, so
                    // per-vertex merge order stays source-partition-
                    // ascending in every mode.
                    let mut offsets = vec![0u32; np + 1];
                    for &v in &part.vertices {
                        offsets[home[v as usize] as usize + 1] += 1;
                    }
                    for q in 0..np {
                        offsets[q + 1] += offsets[q];
                    }
                    let mut cursor = offsets.clone();
                    let mut locals = vec![0u32; part.vertices.len()];
                    for (local, &v) in part.vertices.iter().enumerate() {
                        let q = home[v as usize] as usize;
                        locals[cursor[q] as usize] = local as u32;
                        cursor[q] += 1;
                    }
                    (offsets, locals)
                } else {
                    (Vec::new(), Vec::new())
                };
                PartIndex {
                    home_offsets,
                    home_locals,
                }
            })
            .collect();

        let setup = setup.then(|| {
            let mut home_counts = vec![0u64; np];
            for &h in &home {
                home_counts[h as usize] += 1;
            }
            let mut isolated_counts = vec![0u64; np];
            for (v, &m) in pg.masters().iter().enumerate() {
                if m == NO_PART {
                    isolated_counts[home[v] as usize] += 1;
                }
            }
            // BTreeMap: iterated below, and unordered iteration in the
            // engine is exactly what the analyzer's D1 rule forbids.
            let mut pairs: std::collections::BTreeMap<(u32, u32), u64> =
                std::collections::BTreeMap::new();
            for v in 0..n as u64 {
                let replicas = pg.routing().parts_of(v);
                if replicas.len() > 1 {
                    let h = home[v as usize];
                    let master_exec = exec_of_part[h as usize];
                    for &p in replicas {
                        if p != h {
                            *pairs
                                .entry((master_exec, exec_of_part[p as usize]))
                                .or_default() += 1;
                        }
                    }
                }
            }
            // BTreeMap iteration is already key-ascending: no sort needed.
            let bcast_pairs: Vec<((u32, u32), u64)> = pairs.into_iter().collect();
            SetupAggregates {
                home_counts,
                isolated_counts,
                bcast_pairs,
            }
        });

        Self {
            home,
            exec_of_part,
            parts,
            setup,
            adjacency: adjacency.then(|| FrontierAdjacency::build(pg)),
        }
    }
}

/// Per-thread metering accumulator. Every field is an exact integer
/// counter, so merging thread deltas in any order reproduces the sequential
/// ledger bit for bit.
struct MeterDelta {
    executors: usize,
    /// Row-major `executors × executors` byte/message matrices, allocated
    /// on the first recorded transfer (mirrors [`SuperstepLedger`]'s lazy
    /// hardening: a huge executor grid must not cost `executors²` memory
    /// per worker thread).
    exec_bytes: Vec<u64>,
    exec_msgs: Vec<u64>,
    /// Per-partition counters.
    vertex_ops: Vec<u64>,
    local_bytes: Vec<u64>,
    /// Per-partition resident-state deltas (signed bytes).
    resident: Vec<i64>,
    /// Messages shuffled by this thread.
    msgs: u64,
}

impl MeterDelta {
    fn new(executors: usize, num_parts: usize) -> Self {
        Self {
            executors,
            exec_bytes: Vec::new(),
            exec_msgs: Vec::new(),
            vertex_ops: vec![0; num_parts],
            local_bytes: vec![0; num_parts],
            resident: vec![0; num_parts],
            msgs: 0,
        }
    }

    fn reset(&mut self) {
        self.exec_bytes.fill(0);
        self.exec_msgs.fill(0);
        self.vertex_ops.fill(0);
        self.local_bytes.fill(0);
        self.resident.fill(0);
        self.msgs = 0;
    }

    #[inline]
    fn send_exec(&mut self, from_exec: u32, to_exec: u32, msgs: u64, bytes: u64) {
        if self.exec_bytes.is_empty() {
            let cells = self.executors * self.executors;
            self.exec_bytes = vec![0; cells];
            self.exec_msgs = vec![0; cells];
        }
        let idx = from_exec as usize * self.executors + to_exec as usize;
        self.exec_bytes[idx] += bytes;
        self.exec_msgs[idx] += msgs;
    }

    fn flush_ledger(&self, ledger: &mut SuperstepLedger) {
        for (p, &ops) in self.vertex_ops.iter().enumerate() {
            if ops > 0 {
                ledger.vertex_ops(p as u32, ops);
            }
        }
        for (p, &bytes) in self.local_bytes.iter().enumerate() {
            if bytes > 0 {
                ledger.local_bytes(p as u32, bytes);
            }
        }
        if self.exec_bytes.is_empty() {
            return;
        }
        for from in 0..self.executors {
            for to in 0..self.executors {
                let idx = from * self.executors + to;
                if self.exec_msgs[idx] > 0 || self.exec_bytes[idx] > 0 {
                    ledger.send_exec(
                        from as u32,
                        to as u32,
                        self.exec_msgs[idx],
                        self.exec_bytes[idx],
                    );
                }
            }
        }
    }

    fn flush_resident(&self, sim: &mut ClusterSim) {
        for (p, &delta) in self.resident.iter().enumerate() {
            sim.adjust_resident(p as u32, delta);
        }
    }
}

/// Resets every [`MeterDelta`] and runs `work` over `0..num_parts` on the
/// shared worker-pool abstraction ([`run_chunked`]), one contiguous range
/// and one delta per thread.
fn run_on_pool<F>(num_parts: usize, threads: usize, deltas: &mut [MeterDelta], work: F)
where
    F: Fn(std::ops::Range<usize>, &mut MeterDelta) + Sync,
{
    for delta in deltas.iter_mut() {
        delta.reset();
    }
    run_chunked(num_parts, threads, deltas, work);
}

/// Global out/in degree tables, derived from the partitioned edge tables
/// (the engine never touches the original edge list).
fn degree_tables(pg: &PartitionedGraph) -> (Vec<u32>, Vec<u32>) {
    let n = pg.num_vertices() as usize;
    let mut out_deg = vec![0u32; n];
    let mut in_deg = vec![0u32; n];
    for part in pg.parts() {
        for &(ls, ld) in &part.edges {
            out_deg[part.vertices[ls as usize] as usize] += 1;
            in_deg[part.vertices[ld as usize] as usize] += 1;
        }
    }
    (out_deg, in_deg)
}

/// Program-independent run scratch: the activity bitset, frontier
/// bookkeeping, matched-edge counts, and per-thread metering deltas. A
/// [`PreparedRun`] keeps one of these alive across jobs so back-to-back
/// dispatches allocate nothing here (the message-typed inbox/partial
/// buffers are per-program and stay per-run).
struct RunBuffers {
    active: Vec<bool>,
    frontier: FrontierBuffers,
    matched: Vec<u64>,
    deltas: Vec<MeterDelta>,
}

impl RunBuffers {
    fn new(n: usize, num_parts: usize, executors: usize, threads: usize) -> Self {
        Self {
            active: vec![false; n],
            frontier: FrontierBuffers::new(num_parts),
            matched: vec![0; num_parts],
            deltas: (0..threads)
                .map(|_| MeterDelta::new(executors, num_parts))
                .collect(),
        }
    }
}

/// Runs `program` over `pg` on the simulated `cluster`.
///
/// Returns [`SimError::OutOfMemory`] if the modelled memory demand exceeds
/// an executor's budget — partial results are discarded, as they would be
/// on the real system.
///
/// This is the one-shot entry point: it builds the run-scoped index and
/// buffers, runs, and throws them away. Callers dispatching several jobs
/// against the same cut should build a [`PreparedRun`] once instead.
pub fn run_pregel<P: VertexProgram>(
    program: &P,
    pg: &PartitionedGraph,
    cluster: &ClusterConfig,
    opts: &PregelConfig,
) -> Result<PregelResult<P::State>, SimError> {
    let np = pg.num_parts() as usize;
    let threads = opts.executor.threads().min(np.max(1));
    let index = ScanIndex::build(
        pg,
        cluster,
        threads > 1,
        program.fixed_state_bytes().is_some(),
        opts.scan_mode != ScanMode::Dense && !program.always_active(),
    );
    let (out_deg, in_deg) = degree_tables(pg);
    let mut sim = ClusterSim::new(cluster.clone(), pg.num_parts());
    let mut buffers = RunBuffers::new(
        pg.num_vertices() as usize,
        np,
        cluster.executors as usize,
        threads,
    );
    let (states, supersteps, converged) = execute(
        program,
        pg,
        &index,
        &out_deg,
        &in_deg,
        &mut sim,
        &mut buffers,
        threads,
        opts,
    )?;
    Ok(PregelResult {
        states,
        supersteps,
        converged,
        sim: sim.into_report(),
    })
}

/// A run-scoped handle over one materialized cut: the routing index, degree
/// tables, reusable metering sim, and program-independent buffers, built
/// once and shared by every job dispatched against the same
/// [`PartitionedGraph`]. Back-to-back jobs on one cut skip all routing
/// setup — the serving layer's cache-hit path is
/// [`PreparedRun::run`], which only allocates the message-typed buffers of
/// the program it executes.
///
/// The handle is prepared for a maximum parallelism at construction
/// ([`ExecutorMode::threads`] of the mode passed to [`PreparedRun::new`]);
/// a run requesting more threads is clamped to that budget. Results are
/// bit-identical at every thread count, so clamping never changes states
/// or the metered [`SimReport`].
pub struct PreparedRun {
    pg: Arc<PartitionedGraph>,
    index: ScanIndex,
    out_deg: Vec<u32>,
    in_deg: Vec<u32>,
    sim: ClusterSim,
    buffers: RunBuffers,
    threads: usize,
}

impl PreparedRun {
    /// Builds the routing index, degree tables, and reusable buffers for
    /// `pg` on `cluster`, sized for `executor`'s thread budget. Keeps the
    /// fixed-size-state setup aggregates — the right default for session
    /// handles that serve arbitrary programs.
    pub fn new(pg: Arc<PartitionedGraph>, cluster: &ClusterConfig, executor: ExecutorMode) -> Self {
        Self::with_setup_aggregates(pg, cluster, executor, true)
    }

    /// [`PreparedRun::new`] with control over the setup aggregates: pass
    /// `false` when every program dispatched through this handle has
    /// variable-size state ([`VertexProgram::fixed_state_bytes`] is
    /// `None`), so the O(vertices + replicas) aggregation pass — which
    /// such programs never read — is skipped.
    pub fn with_setup_aggregates(
        pg: Arc<PartitionedGraph>,
        cluster: &ClusterConfig,
        executor: ExecutorMode,
        setup: bool,
    ) -> Self {
        let np = pg.num_parts() as usize;
        let threads = executor.threads().min(np.max(1));
        // Session handles serve arbitrary programs, so the sparse-scan
        // adjacency is always worth caching alongside the routing index.
        let index = ScanIndex::build(&pg, cluster, threads > 1, setup, true);
        let (out_deg, in_deg) = degree_tables(&pg);
        let sim = ClusterSim::new(cluster.clone(), pg.num_parts());
        let buffers = RunBuffers::new(
            pg.num_vertices() as usize,
            np,
            cluster.executors as usize,
            threads,
        );
        Self {
            pg,
            index,
            out_deg,
            in_deg,
            sim,
            buffers,
            threads,
        }
    }

    /// The cut this handle was prepared for.
    pub fn graph(&self) -> &Arc<PartitionedGraph> {
        &self.pg
    }

    /// The cluster the metering sim bills against.
    pub fn cluster(&self) -> &ClusterConfig {
        self.sim.config()
    }

    /// The thread budget the handle was prepared for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `program` on the prepared cut. Bit-identical — vertex states
    /// *and* [`SimReport`] — to [`run_pregel`] on the same graph, cluster,
    /// and options, for any sequence of prior runs through this handle:
    /// the metering sim is [`ClusterSim::reset`] (allocations kept) and
    /// every reused buffer is re-initialized before the loop starts.
    pub fn run<P: VertexProgram>(
        &mut self,
        program: &P,
        opts: &PregelConfig,
    ) -> Result<PregelResult<P::State>, SimError> {
        let np = self.pg.num_parts() as usize;
        let threads = opts.executor.threads().min(self.threads).min(np.max(1));
        self.sim.reset();
        let (states, supersteps, converged) = execute(
            program,
            &self.pg,
            &self.index,
            &self.out_deg,
            &self.in_deg,
            &mut self.sim,
            &mut self.buffers,
            threads,
            opts,
        )?;
        Ok(PregelResult {
            states,
            supersteps,
            converged,
            sim: self.sim.report().clone(),
        })
    }
}

/// The superstep loop shared by [`run_pregel`] (transient index/buffers)
/// and [`PreparedRun::run`] (cached index, reused buffers). `threads` is
/// the already-clamped worker count; `opts` supplies the iteration cap and
/// load-charging policy.
#[allow(clippy::too_many_arguments)]
fn execute<P: VertexProgram>(
    program: &P,
    pg: &PartitionedGraph,
    index: &ScanIndex,
    out_deg: &[u32],
    in_deg: &[u32],
    sim: &mut ClusterSim,
    buffers: &mut RunBuffers,
    threads: usize,
    opts: &PregelConfig,
) -> Result<(Vec<P::State>, u64, bool), SimError> {
    let n = pg.num_vertices() as usize;
    let np = pg.num_parts() as usize;
    let num_edges = pg.num_edges();
    let msg_overhead = sim.config().cost.message_overhead_bytes;
    let executors = sim.config().executors as usize;
    debug_assert_eq!(executors, buffers.deltas[0].executors);
    let all_active = program.always_active();
    let dir = program.active_direction();
    // Sparse scans need the incident-edge adjacency. Without one — forced
    // dense mode, an always-active program (its frontier never shrinks), or
    // an index built without it — every superstep takes the dense path.
    let adjacency = if all_active || opts.scan_mode == ScanMode::Dense {
        None
    } else {
        index.adjacency.as_ref()
    };
    let force_sparse = opts.scan_mode == ScanMode::Sparse;

    if let Some(every) = opts.checkpoint_interval {
        sim.set_checkpoint_interval(every);
    }
    if opts.charge_initial_load {
        sim.charge_load(cutfit_cluster::load_bytes(
            pg.num_vertices(),
            pg.num_edges(),
        ));
    }

    // --- Setup: initial apply on every vertex + replica broadcast. ---
    let ctx = InitCtx {
        out_degrees: out_deg,
        in_degrees: in_deg,
        num_vertices: pg.num_vertices(),
    };
    let init_msg = program.initial_msg();
    let mut states: Vec<P::State> = (0..n as u64)
        .map(|v| {
            let s = program.initial_state(v, &ctx);
            program.apply(v, &s, &init_msg)
        })
        .collect();
    let fixed_state = program.fixed_state_bytes();
    let batched_setup = match (fixed_state, &index.setup) {
        (Some(size), Some(setup)) => Some((size, setup)),
        _ => None,
    };
    if let Some((size, setup)) = batched_setup {
        // Every state bills the same constant, so the setup superstep is a
        // pure function of the cut's precomputed counts: one vertex op per
        // mastered vertex, one broadcast message per (vertex, mirror)
        // pair — batched per executor pair. Ledger accumulation is
        // commutative integer addition, so this is bit-identical to the
        // per-vertex sweep below.
        for (q, &count) in setup.home_counts.iter().enumerate() {
            if count > 0 {
                sim.ledger().vertex_ops(q as PartId, count);
            }
        }
        let bytes = size + msg_overhead;
        for &((from, to), msgs) in &setup.bcast_pairs {
            sim.ledger().send_exec(from, to, msgs, msgs * bytes);
        }
    } else {
        for v in 0..n as u64 {
            let home = index.home[v as usize];
            sim.ledger().vertex_ops(home, 1);
            let replicas = pg.routing().parts_of(v);
            if replicas.len() > 1 {
                let bytes = program.state_bytes(&states[vid_index(v)]) + msg_overhead;
                let master_exec = index.exec_of_part[part_index(home)];
                for &p in replicas {
                    if p != home {
                        sim.ledger().send_exec(
                            master_exec,
                            index.exec_of_part[p as usize],
                            1,
                            bytes,
                        );
                    }
                }
            }
        }
    }

    // --- Residency: structure + replica states, declared once and updated
    //     incrementally; re-summing every replica per superstep is gone. ---
    let mut resident: Vec<u64> = pg.parts().iter().map(|p| p.structure_bytes()).collect();
    for (p, part) in pg.parts().iter().enumerate() {
        resident[p] += match fixed_state {
            Some(size) => part.num_vertices() * size,
            None => part
                .vertices
                .iter()
                .map(|&v| program.state_bytes(&states[v as usize]))
                .sum(),
        };
    }
    // Isolated vertices have no replica, but their state still occupies the
    // hash-fallback home (the vertex RDD is hash-partitioned regardless of
    // edges) — and since messages only travel along edges, those states
    // never change after setup: charge them once.
    if let Some((size, setup)) = batched_setup {
        for (q, &count) in setup.isolated_counts.iter().enumerate() {
            resident[q] += count * size;
        }
    } else {
        for (v, &master) in pg.masters().iter().enumerate() {
            if master == NO_PART {
                resident[index.home[v] as usize] += program.state_bytes(&states[v]);
            }
        }
    }
    for (p, &bytes) in resident.iter().enumerate() {
        sim.set_resident(p as PartId, bytes);
    }
    drop(resident);
    sim.end_superstep()?;

    // --- Run-scoped buffers: message-typed inbox/partials are allocated
    //     per run (the message type changes with the program); everything
    //     program-independent comes from the reusable `RunBuffers` and is
    //     re-initialized in place. ---
    let mut partials: Vec<Vec<Option<P::Msg>>> = pg
        .parts()
        .iter()
        .map(|part| {
            std::iter::repeat_with(|| None)
                .take(part.vertices.len())
                .collect()
        })
        .collect();
    let mut inbox: Vec<Option<P::Msg>> = std::iter::repeat_with(|| None).take(n).collect();
    let RunBuffers {
        active,
        frontier: fb,
        matched,
        deltas,
    } = buffers;
    let deltas = &mut deltas[..threads];
    fb.reset();
    let FrontierBuffers {
        frontier,
        touched_inbox,
        part_frontier,
        touched_partials,
        gather,
        deg_sum,
        scan_kind,
        sparse_wants,
    } = fb;
    if !all_active {
        // The frontier protocol keeps `active` equal to the current
        // frontier set from the second message superstep on. The first
        // superstep is implicitly all-active (`frontier_all`) and never
        // reads the bitset, so a clean all-false start suffices — and
        // always-active programs never touch it at all.
        active.fill(false);
    }
    let mut frontier_all = true;

    // --- Superstep loop. ---
    let mut supersteps = 0u64;
    let mut converged = false;
    while supersteps < opts.max_iterations {
        // 0. Plan: distribute the frontier to its replica partitions and
        //    pick each partition's scan kind. While every vertex is active
        //    (superstep one, always-active programs) all partitions take
        //    the predicate-free full scan.
        let active_count = if frontier_all {
            scan_kind.fill(ScanKind::Full);
            n as u64
        } else if let Some(adj) = adjacency {
            plan_sparse_scan(
                pg,
                adj,
                dir,
                force_sparse,
                (out_deg, in_deg),
                frontier,
                part_frontier,
                deg_sum,
                scan_kind,
                sparse_wants,
            )
        } else {
            scan_kind.fill(ScanKind::Dense);
            frontier.iter().map(|f| f.len() as u64).sum()
        };

        // 1. Scan: per-partition pre-aggregated messages, in parallel over
        //    edge partitions. Sparse partitions visit only the frontier's
        //    incident edges (ascending edge index, so per-slot merge order
        //    matches the dense walk) and record first-written partial
        //    slots for the shuffle.
        scan_all(
            program,
            pg,
            adjacency,
            &*states,
            active,
            out_deg,
            in_deg,
            &mut partials,
            part_frontier,
            touched_partials,
            gather,
            scan_kind,
            matched,
            threads,
        );
        for (p, &m) in matched.iter().enumerate() {
            sim.ledger().edge_scans(p as PartId, m);
        }
        // Frontier telemetry: active vertices at scan time and edges the
        // scan visited. Both are mode-invariant integers — `matched` is
        // pinned equal across modes, and the frontier is exactly the set
        // of vertices that received messages last superstep.
        let scanned: u64 = matched.iter().sum();
        sim.ledger()
            .record_frontier(active_count, n as u64, scanned, num_edges);

        // 2. Shuffle partials to masters. Dense/full partitions: one linear
        //    sweep over the partial buffer (single-threaded) or the
        //    home-grouped locals (pool). Sparse partitions: drain exactly
        //    the touched slots. Every path visits each vertex's messages in
        //    ascending source-partition order — at most one slot exists per
        //    (vertex, partition) — so the merged inbox is bit-identical.
        //    First-written inbox slots are recorded per home partition:
        //    they are the next frontier.
        if threads <= 1 {
            let delta = &mut deltas[0];
            delta.reset();
            for p in 0..np {
                let globals = &pg.parts()[p].vertices;
                let from_exec = index.exec_of_part[p];
                let partial = &mut partials[p];
                let mut drain = |local: usize, slot: &mut Option<P::Msg>| {
                    let Some(msg) = slot.take() else { return };
                    let v = vid_index(globals[local]);
                    let q = part_index(index.home[v]);
                    let bytes = program.msg_bytes(&msg) + msg_overhead;
                    delta.send_exec(from_exec, index.exec_of_part[q], 1, bytes);
                    delta.local_bytes[q] += bytes;
                    delta.msgs += 1;
                    let entry = &mut inbox[v];
                    *entry = Some(match entry.take() {
                        Some(acc) => program.merge(acc, msg),
                        None => {
                            touched_inbox[q].push(v as VertexId);
                            msg
                        }
                    });
                };
                if scan_kind[p] == ScanKind::Sparse {
                    for &local in touched_partials[p].iter() {
                        drain(local as usize, &mut partial[local as usize]);
                    }
                } else {
                    for (local, slot) in partial.iter_mut().enumerate() {
                        drain(local, slot);
                    }
                }
            }
        } else {
            let inbox_cells = DisjointSlice::new(&mut inbox);
            let touched_cells = DisjointSlice::new(touched_inbox.as_mut_slice());
            let partial_cells: Vec<DisjointSlice<'_, Option<P::Msg>>> =
                partials.iter_mut().map(|p| DisjointSlice::new(p)).collect();
            run_on_pool(np, threads, deltas, |homes, delta| {
                for q in homes {
                    let to_exec = index.exec_of_part[q];
                    // SAFETY: home q belongs to this thread only.
                    let touched_q = unsafe { touched_cells.get_mut(q) };
                    for (p, pindex) in index.parts.iter().enumerate() {
                        let from_exec = index.exec_of_part[p];
                        let globals = &pg.parts()[p].vertices;
                        let mut drain = |local: usize| {
                            // SAFETY: (p, local) resolves to a vertex whose
                            // home is q, and q belongs to this thread only
                            // — one writer per slot even when two threads
                            // walk the same touched list.
                            let slot = unsafe { partial_cells[p].get_mut(local) };
                            let Some(msg) = slot.take() else { return };
                            let v = vid_index(globals[local]);
                            let bytes = program.msg_bytes(&msg) + msg_overhead;
                            delta.send_exec(from_exec, to_exec, 1, bytes);
                            delta.local_bytes[q] += bytes;
                            delta.msgs += 1;
                            // SAFETY: v's home is q — disjoint across threads.
                            let entry = unsafe { inbox_cells.get_mut(v) };
                            *entry = Some(match entry.take() {
                                Some(acc) => program.merge(acc, msg),
                                None => {
                                    touched_q.push(v as VertexId);
                                    msg
                                }
                            });
                        };
                        if scan_kind[p] == ScanKind::Sparse {
                            for &local in touched_partials[p].iter() {
                                if part_index(index.home[vid_index(globals[local as usize])]) == q {
                                    drain(local as usize);
                                }
                            }
                        } else {
                            for &local in pindex.locals_of_home(q) {
                                drain(local as usize);
                            }
                        }
                    }
                }
            });
        }
        for list in touched_partials.iter_mut() {
            list.clear();
        }
        let msg_count: u64 = deltas.iter().map(|d| d.msgs).sum();
        for delta in deltas.iter() {
            delta.flush_ledger(sim.ledger());
        }

        if msg_count == 0 {
            converged = true;
            sim.end_superstep()?;
            break;
        }

        // 3. Apply at masters; 4. broadcast updated states to mirrors.
        //    Drains exactly the touched inbox slots, grouped by home
        //    partition (single-threaded: homes in ascending order;
        //    multi-threaded: disjoint home shards) — no O(V) inbox sweep
        //    and no O(V) bitset reset: the old frontier's bits are cleared
        //    list-wise, then the touched vertices become the new frontier.
        //    Applies are independent per vertex and all metering is
        //    commutative-integral, so visit order never shows in states or
        //    bills. Residency is tracked as signed per-partition deltas
        //    (exactly zero for fixed-size states).
        if threads <= 1 {
            let delta = &mut deltas[0];
            delta.reset();
            if !all_active && !frontier_all {
                for flist in frontier.iter() {
                    for &fv in flist {
                        active[vid_index(fv)] = false;
                    }
                }
            }
            for (q, touched_q) in touched_inbox.iter().enumerate() {
                let master_exec = index.exec_of_part[q];
                for &tv in touched_q {
                    let v = vid_index(tv);
                    let Some(msg) = inbox[v].take() else { continue };
                    let state = &mut states[v];
                    let old_bytes = if fixed_state.is_none() {
                        program.state_bytes(state)
                    } else {
                        0
                    };
                    *state = program.apply(tv, state, &msg);
                    if !all_active {
                        active[v] = true;
                    }
                    let state_size = program.state_bytes(state);
                    delta.vertex_ops[q] += 1;
                    delta.local_bytes[q] += state_size;
                    let bytes = state_size + msg_overhead;
                    for &p in pg.routing().parts_of(tv) {
                        if part_index(p) != q {
                            delta.send_exec(
                                master_exec,
                                index.exec_of_part[part_index(p)],
                                1,
                                bytes,
                            );
                        }
                    }
                    if fixed_state.is_none() {
                        let diff = state_size as i64 - old_bytes as i64;
                        if diff != 0 {
                            for &p in pg.routing().parts_of(tv) {
                                delta.resident[part_index(p)] += diff;
                            }
                        }
                    }
                }
            }
        } else {
            let inbox_cells = DisjointSlice::new(&mut inbox);
            let state_cells = DisjointSlice::new(&mut states);
            let active_cells = DisjointSlice::new(active.as_mut_slice());
            run_on_pool(np, threads, deltas, |homes, delta| {
                for q in homes {
                    let master_exec = index.exec_of_part[q];
                    if !all_active && !frontier_all {
                        for &fv in frontier[q].iter() {
                            // SAFETY: frontier[q] holds only vertices homed
                            // at q, owned by this thread only.
                            unsafe { *active_cells.get_mut(vid_index(fv)) = false };
                        }
                    }
                    for &tv in touched_inbox[q].iter() {
                        let v = vid_index(tv);
                        // SAFETY: tv's home is q, owned by this thread
                        // only; the same argument covers states and the
                        // activity bitset.
                        let slot = unsafe { inbox_cells.get_mut(v) };
                        let Some(msg) = slot.take() else { continue };
                        let state = unsafe { state_cells.get_mut(v) };
                        let old_bytes = if fixed_state.is_none() {
                            program.state_bytes(state)
                        } else {
                            0
                        };
                        *state = program.apply(tv, state, &msg);
                        if !all_active {
                            unsafe { *active_cells.get_mut(v) = true };
                        }
                        let state_size = program.state_bytes(state);
                        delta.vertex_ops[q] += 1;
                        delta.local_bytes[q] += state_size;
                        let bytes = state_size + msg_overhead;
                        for &p in pg.routing().parts_of(tv) {
                            if part_index(p) != q {
                                delta.send_exec(
                                    master_exec,
                                    index.exec_of_part[part_index(p)],
                                    1,
                                    bytes,
                                );
                            }
                        }
                        if fixed_state.is_none() {
                            let diff = state_size as i64 - old_bytes as i64;
                            if diff != 0 {
                                for &p in pg.routing().parts_of(tv) {
                                    delta.resident[part_index(p)] += diff;
                                }
                            }
                        }
                    }
                }
            });
        }
        for delta in deltas.iter() {
            delta.flush_ledger(sim.ledger());
            delta.flush_resident(sim);
        }
        // The vertices that received messages are exactly next superstep's
        // frontier: swap the touched lists in and recycle the old frontier
        // lists as next superstep's touched scratch. Always-active programs
        // stay in `frontier_all` forever and just recycle the scratch.
        if all_active {
            for list in touched_inbox.iter_mut() {
                list.clear();
            }
        } else {
            std::mem::swap(frontier, touched_inbox);
            for list in touched_inbox.iter_mut() {
                list.clear();
            }
            frontier_all = false;
        }
        supersteps += 1;
        sim.end_superstep()?;
    }

    Ok((states, supersteps, converged))
}

/// Scans all partitions, sequentially or on the pool, writing per-partition
/// pre-aggregated messages into the reusable `partials` buffers and the
/// matched-edge counts (for metering) into `matched`. Each partition is
/// scanned according to its planned [`ScanKind`]: `Full` skips the activity
/// predicate entirely, `Dense` walks all edges testing the bitset, `Sparse`
/// gathers the frontier's incident edges from the partition's adjacency
/// lists and visits only those — in ascending edge index, so the per-slot
/// merge order (and hence every float bit pattern) matches the dense walk.
#[allow(clippy::too_many_arguments)]
fn scan_all<P: VertexProgram>(
    program: &P,
    pg: &PartitionedGraph,
    adjacency: Option<&FrontierAdjacency>,
    states: &[P::State],
    active: &[bool],
    out_deg: &[u32],
    in_deg: &[u32],
    partials: &mut [Vec<Option<P::Msg>>],
    part_frontier: &[Vec<u32>],
    touched_partials: &mut [Vec<u32>],
    gather: &mut [Vec<u32>],
    scan_kind: &[ScanKind],
    matched: &mut [u64],
    threads: usize,
) {
    if threads <= 1 {
        for (p, part) in pg.parts().iter().enumerate() {
            matched[p] = scan_part_dispatch(
                program,
                part,
                p,
                adjacency,
                states,
                active,
                out_deg,
                in_deg,
                &mut partials[p],
                &part_frontier[p],
                &mut touched_partials[p],
                &mut gather[p],
                scan_kind[p],
            );
        }
        return;
    }
    let partial_cells = DisjointSlice::new(partials);
    let touched_cells = DisjointSlice::new(touched_partials);
    let gather_cells = DisjointSlice::new(gather);
    let matched_cells = DisjointSlice::new(matched);
    run_ranges(pg.parts().len(), threads, |parts| {
        for p in parts {
            // SAFETY: partition ranges are disjoint across threads, so each
            // partition's partial buffer, touched list, gather scratch, and
            // matched slot has exactly one writer.
            let partial = unsafe { partial_cells.get_mut(p) };
            let touched = unsafe { touched_cells.get_mut(p) };
            let gat = unsafe { gather_cells.get_mut(p) };
            let m = scan_part_dispatch(
                program,
                &pg.parts()[p],
                p,
                adjacency,
                states,
                active,
                out_deg,
                in_deg,
                partial,
                &part_frontier[p],
                touched,
                gat,
                scan_kind[p],
            );
            unsafe { *matched_cells.get_mut(p) = m };
        }
    });
}

/// Routes one partition's scan to the implementation its planned
/// [`ScanKind`] calls for. A `Sparse` plan with no adjacency built (which
/// the planner never produces) degrades safely to the dense predicate walk.
#[allow(clippy::too_many_arguments)]
fn scan_part_dispatch<P: VertexProgram>(
    program: &P,
    part: &EdgePartition,
    p: usize,
    adjacency: Option<&FrontierAdjacency>,
    states: &[P::State],
    active: &[bool],
    out_deg: &[u32],
    in_deg: &[u32],
    out: &mut [Option<P::Msg>],
    flist: &[u32],
    touched: &mut Vec<u32>,
    gather: &mut Vec<u32>,
    kind: ScanKind,
) -> u64 {
    match kind {
        ScanKind::Full => scan_partition_full(program, part, states, out_deg, in_deg, out),
        ScanKind::Sparse => {
            if flist.is_empty() {
                // No frontier replica lives here: nothing to gather, no
                // edge the dense predicate would match, no CSR needed.
                return 0;
            }
            let Some(pa) = adjacency.and_then(|adj| adj.part(p)) else {
                return scan_partition(program, part, states, active, out_deg, in_deg, out);
            };
            gather_edges(pa, flist, program.active_direction(), gather);
            scan_partition_sparse(
                program, part, states, active, out_deg, in_deg, out, gather, touched,
            )
        }
        ScanKind::Dense => scan_partition(program, part, states, active, out_deg, in_deg, out),
    }
}

/// Scans one partition: map-side combine into the partition's reusable
/// local-vertex-indexed buffer (left all-`None` by the previous shuffle).
fn scan_partition<P: VertexProgram>(
    program: &P,
    part: &EdgePartition,
    states: &[P::State],
    active: &[bool],
    out_deg: &[u32],
    in_deg: &[u32],
    out: &mut [Option<P::Msg>],
) -> u64 {
    let mut matched = 0u64;
    let dir = program.active_direction();
    for &(ls, ld) in &part.edges {
        let src = part.vertices[ls as usize];
        let dst = part.vertices[ld as usize];
        let s = vid_index(src);
        let d = vid_index(dst);
        let scan = match dir {
            ActiveDirection::Either => active[s] || active[d],
            ActiveDirection::Out => active[s],
            ActiveDirection::In => active[d],
            ActiveDirection::Both => active[s] && active[d],
        };
        if !scan {
            continue;
        }
        matched += 1;
        let triplet = Triplet {
            src,
            dst,
            src_state: &states[s],
            dst_state: &states[d],
            src_out_degree: out_deg[s],
            dst_in_degree: in_deg[d],
        };
        match program.send(&triplet) {
            Messages::None => {}
            Messages::ToSrc(m) => emit(program, &mut out[ls as usize], m),
            Messages::ToDst(m) => emit(program, &mut out[ld as usize], m),
            Messages::Both(ms, md) => {
                emit(program, &mut out[ls as usize], ms);
                emit(program, &mut out[ld as usize], md);
            }
        }
    }
    matched
}

/// Scans one partition with every vertex active: the activity predicate is
/// statically true (superstep one, always-active programs), so the bitset
/// is never read and `matched` is exactly the partition's edge count.
fn scan_partition_full<P: VertexProgram>(
    program: &P,
    part: &EdgePartition,
    states: &[P::State],
    out_deg: &[u32],
    in_deg: &[u32],
    out: &mut [Option<P::Msg>],
) -> u64 {
    for &(ls, ld) in &part.edges {
        let src = part.vertices[ls as usize];
        let dst = part.vertices[ld as usize];
        let s = vid_index(src);
        let d = vid_index(dst);
        let triplet = Triplet {
            src,
            dst,
            src_state: &states[s],
            dst_state: &states[d],
            src_out_degree: out_deg[s],
            dst_in_degree: in_deg[d],
        };
        match program.send(&triplet) {
            Messages::None => {}
            Messages::ToSrc(m) => emit(program, &mut out[ls as usize], m),
            Messages::ToDst(m) => emit(program, &mut out[ld as usize], m),
            Messages::Both(ms, md) => {
                emit(program, &mut out[ls as usize], ms);
                emit(program, &mut out[ld as usize], md);
            }
        }
    }
    part.edges.len() as u64
}

/// Scans one partition through a gathered edge-index list instead of the
/// full edge array. The gather upholds two invariants (see
/// [`crate::frontier::gather_edges`]): it contains exactly the edges the
/// dense predicate would match — except under `Both`, where it
/// over-approximates with src-incident edges and the `active[dst]` check
/// here restores exactness — and it is sorted ascending, so slots merge
/// their messages in the same order as the dense walk. Locals whose slot
/// goes `None → Some` are pushed onto `touched` for the sparse shuffle.
#[allow(clippy::too_many_arguments)]
fn scan_partition_sparse<P: VertexProgram>(
    program: &P,
    part: &EdgePartition,
    states: &[P::State],
    active: &[bool],
    out_deg: &[u32],
    in_deg: &[u32],
    out: &mut [Option<P::Msg>],
    gathered: &[u32],
    touched: &mut Vec<u32>,
) -> u64 {
    let mut matched = 0u64;
    let both = program.active_direction() == ActiveDirection::Both;
    for &e in gathered {
        let (ls, ld) = part.edges[e as usize];
        let src = part.vertices[ls as usize];
        let dst = part.vertices[ld as usize];
        let s = vid_index(src);
        let d = vid_index(dst);
        if both && !(active[s] && active[d]) {
            continue;
        }
        matched += 1;
        let triplet = Triplet {
            src,
            dst,
            src_state: &states[s],
            dst_state: &states[d],
            src_out_degree: out_deg[s],
            dst_in_degree: in_deg[d],
        };
        match program.send(&triplet) {
            Messages::None => {}
            Messages::ToSrc(m) => emit_touched(program, out, ls, touched, m),
            Messages::ToDst(m) => emit_touched(program, out, ld, touched, m),
            Messages::Both(ms, md) => {
                emit_touched(program, out, ls, touched, ms);
                emit_touched(program, out, ld, touched, md);
            }
        }
    }
    matched
}

#[inline]
fn emit<P: VertexProgram>(program: &P, slot: &mut Option<P::Msg>, msg: P::Msg) {
    *slot = Some(match slot.take() {
        Some(acc) => program.merge(acc, msg),
        None => msg,
    });
}

/// [`emit`] that also records first-written locals, so the sparse shuffle
/// can drain exactly the populated slots instead of sweeping the partition.
#[inline]
fn emit_touched<P: VertexProgram>(
    program: &P,
    out: &mut [Option<P::Msg>],
    local: u32,
    touched: &mut Vec<u32>,
    msg: P::Msg,
) {
    let slot = &mut out[local as usize];
    *slot = Some(match slot.take() {
        Some(acc) => program.merge(acc, msg),
        None => {
            touched.push(local);
            msg
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use cutfit_graph::{Edge, Graph};
    use cutfit_partition::{GraphXStrategy, Partitioner};

    /// Max-id label propagation: converges to the component-wise max.
    struct MaxLabel;
    impl VertexProgram for MaxLabel {
        type State = u64;
        type Msg = u64;
        fn name(&self) -> &'static str {
            "max-label"
        }
        fn initial_state(&self, v: VertexId, _ctx: &InitCtx<'_>) -> u64 {
            v
        }
        fn initial_msg(&self) -> u64 {
            0
        }
        fn apply(&self, _v: VertexId, state: &u64, msg: &u64) -> u64 {
            *state.max(msg)
        }
        fn send(&self, t: &Triplet<'_, u64>) -> Messages<u64> {
            match (t.src_state > t.dst_state, t.dst_state > t.src_state) {
                (true, _) => Messages::ToDst(*t.src_state),
                (_, true) => Messages::ToSrc(*t.dst_state),
                _ => Messages::None,
            }
        }
        fn merge(&self, a: u64, b: u64) -> u64 {
            a.max(b)
        }
        fn fixed_state_bytes(&self) -> Option<u64> {
            Some(8)
        }
    }

    fn two_components() -> Graph {
        Graph::new(
            7,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(4, 5),
            ],
        )
    }

    fn cfg() -> ClusterConfig {
        ClusterConfig::paper_cluster()
    }

    #[test]
    fn max_label_converges_per_component() {
        let pg = GraphXStrategy::RandomVertexCut.partition(&two_components(), 4);
        let r = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.states, vec![3, 3, 3, 3, 5, 5, 6]);
        assert!(r.supersteps >= 3, "information must travel the path");
        assert!(r.sim.total_seconds > 0.0);
    }

    #[test]
    fn isolated_vertices_keep_initial_state() {
        let g = Graph::new(3, vec![Edge::new(0, 1)]);
        let pg = GraphXStrategy::SourceCut.partition(&g, 2);
        let r = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        assert_eq!(r.states[2], 2);
    }

    #[test]
    fn max_iterations_caps_supersteps() {
        let g = Graph::new(50, (0..49).map(|v| Edge::new(v, v + 1)).collect());
        let pg = GraphXStrategy::EdgePartition1D.partition(&g, 4);
        let opts = PregelConfig {
            max_iterations: 5,
            ..Default::default()
        };
        let r = run_pregel(&MaxLabel, &pg, &cfg(), &opts).unwrap();
        assert_eq!(r.supersteps, 5);
        assert!(!r.converged);
    }

    #[test]
    fn parallel_equals_sequential() {
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 9);
        let pg = GraphXStrategy::EdgePartition2D.partition(&g, 16);
        let seq = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        let par = run_pregel(
            &MaxLabel,
            &pg,
            &cfg(),
            &PregelConfig {
                executor: ExecutorMode::Parallel { threads: 4 },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(seq.states, par.states);
        assert_eq!(seq.supersteps, par.supersteps);
        assert_eq!(seq.sim, par.sim, "metering must be identical too");
    }

    #[test]
    fn auto_equals_sequential() {
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 8);
        let pg = GraphXStrategy::CanonicalRandomVertexCut.partition(&g, 8);
        let seq = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        let auto = run_pregel(
            &MaxLabel,
            &pg,
            &cfg(),
            &PregelConfig {
                executor: ExecutorMode::Auto,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(ExecutorMode::Auto.threads() >= 1);
        assert_eq!(seq.states, auto.states);
        assert_eq!(seq.sim, auto.sim);
    }

    /// MaxLabel with a fat fixed-size state, for memory-accounting tests.
    struct FatLabel;
    impl VertexProgram for FatLabel {
        type State = u64;
        type Msg = u64;
        fn name(&self) -> &'static str {
            "fat-label"
        }
        fn initial_state(&self, v: VertexId, _ctx: &InitCtx<'_>) -> u64 {
            v
        }
        fn initial_msg(&self) -> u64 {
            0
        }
        fn apply(&self, _v: VertexId, state: &u64, msg: &u64) -> u64 {
            *state.max(msg)
        }
        fn send(&self, t: &Triplet<'_, u64>) -> Messages<u64> {
            if t.src_state > t.dst_state {
                Messages::ToDst(*t.src_state)
            } else {
                Messages::None
            }
        }
        fn merge(&self, a: u64, b: u64) -> u64 {
            a.max(b)
        }
        fn state_bytes(&self, _state: &u64) -> u64 {
            1 << 20 // 1 MB per vertex
        }
        fn fixed_state_bytes(&self) -> Option<u64> {
            Some(1 << 20)
        }
    }

    #[test]
    fn isolated_vertices_count_toward_resident_memory() {
        // Same single edge; one graph carries 98 extra isolated vertices.
        // Their 1 MB states must surface in peak executor memory, charged at
        // the hash-fallback homes.
        let small = Graph::new(2, vec![Edge::new(0, 1)]);
        let sparse = Graph::new(100, vec![Edge::new(0, 1)]);
        let run = |g: &Graph| {
            let pg = GraphXStrategy::RandomVertexCut.partition(g, 4);
            run_pregel(&FatLabel, &pg, &cfg(), &PregelConfig::default()).unwrap()
        };
        let base = run(&small).sim.peak_executor_memory_gb;
        let with_isolated = run(&sparse).sim.peak_executor_memory_gb;
        // 98 isolated MB spread over 4 partitions: the busiest executor
        // gains at least a couple dozen MB even under a skewed hash.
        assert!(
            with_isolated > base + 0.02,
            "isolated vertices must be resident somewhere: {with_isolated} vs {base}"
        );
    }

    /// A program whose state grows as labels arrive — exercises the
    /// incremental (delta-based) residency path for variable-size states.
    struct GrowingTrail;
    impl VertexProgram for GrowingTrail {
        type State = Vec<u64>;
        type Msg = u64;
        fn name(&self) -> &'static str {
            "growing-trail"
        }
        fn initial_state(&self, v: VertexId, _ctx: &InitCtx<'_>) -> Vec<u64> {
            vec![v]
        }
        fn initial_msg(&self) -> u64 {
            0
        }
        fn apply(&self, _v: VertexId, state: &Vec<u64>, msg: &u64) -> Vec<u64> {
            let mut next = state.clone();
            if next.last() != Some(msg) {
                next.push(*msg);
            }
            next
        }
        fn send(&self, t: &Triplet<'_, Vec<u64>>) -> Messages<u64> {
            let (s, d) = (t.src_state.last().unwrap(), t.dst_state.last().unwrap());
            if s > d {
                Messages::ToDst(*s)
            } else {
                Messages::None
            }
        }
        fn merge(&self, a: u64, b: u64) -> u64 {
            a.max(b)
        }
        fn state_bytes(&self, state: &Vec<u64>) -> u64 {
            8 * state.len() as u64
        }
    }

    #[test]
    fn variable_state_metering_is_mode_independent() {
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 8);
        let pg = GraphXStrategy::EdgePartition1D.partition(&g, 8);
        let seq = run_pregel(&GrowingTrail, &pg, &cfg(), &PregelConfig::default()).unwrap();
        let par = run_pregel(
            &GrowingTrail,
            &pg,
            &cfg(),
            &PregelConfig {
                executor: ExecutorMode::Parallel { threads: 3 },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(seq.states, par.states);
        assert_eq!(
            seq.sim, par.sim,
            "incremental residency deltas must be order-independent"
        );
        assert!(
            seq.sim.peak_executor_memory_gb > 0.0,
            "growing states must register in memory accounting"
        );
    }

    #[test]
    fn worse_partitioning_ships_more_remote_bytes() {
        // CRVC collocates both directions; RVC splits them — on a symmetric
        // graph RVC must replicate more and thus ship more bytes.
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 11).symmetrized();
        let crvc = GraphXStrategy::CanonicalRandomVertexCut.partition(&g, 32);
        let rvc = GraphXStrategy::RandomVertexCut.partition(&g, 32);
        let opts = PregelConfig {
            max_iterations: 3,
            ..Default::default()
        };
        let a = run_pregel(&MaxLabel, &crvc, &cfg(), &opts).unwrap();
        let b = run_pregel(&MaxLabel, &rvc, &cfg(), &opts).unwrap();
        assert!(
            b.sim.remote_bytes > a.sim.remote_bytes,
            "rvc {} vs crvc {}",
            b.sim.remote_bytes,
            a.sim.remote_bytes
        );
    }

    #[test]
    fn activity_tracking_reduces_scans_over_time() {
        // After convergence regions stop being scanned: total messages are
        // finite even with a generous iteration cap.
        let g = two_components();
        let pg = GraphXStrategy::CanonicalRandomVertexCut.partition(&g, 2);
        let r = run_pregel(
            &MaxLabel,
            &pg,
            &cfg(),
            &PregelConfig {
                max_iterations: 1000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.converged);
        assert!(r.supersteps < 10);
    }

    #[test]
    fn oom_is_reported() {
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 10);
        let pg = GraphXStrategy::RandomVertexCut.partition(&g, 8);
        let tiny = ClusterConfig {
            executor_memory_gb: 1e-6,
            ..ClusterConfig::paper_cluster()
        };
        let err = run_pregel(&MaxLabel, &pg, &tiny, &PregelConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
    }

    /// MaxLabel without the fixed-size declaration: takes the per-vertex
    /// setup-metering sweep instead of the batched path.
    struct MaxLabelUndeclared;
    impl VertexProgram for MaxLabelUndeclared {
        type State = u64;
        type Msg = u64;
        fn name(&self) -> &'static str {
            "max-label-undeclared"
        }
        fn initial_state(&self, v: VertexId, _ctx: &InitCtx<'_>) -> u64 {
            v
        }
        fn initial_msg(&self) -> u64 {
            0
        }
        fn apply(&self, _v: VertexId, state: &u64, msg: &u64) -> u64 {
            *state.max(msg)
        }
        fn send(&self, t: &Triplet<'_, u64>) -> Messages<u64> {
            match (t.src_state > t.dst_state, t.dst_state > t.src_state) {
                (true, _) => Messages::ToDst(*t.src_state),
                (_, true) => Messages::ToSrc(*t.dst_state),
                _ => Messages::None,
            }
        }
        fn merge(&self, a: u64, b: u64) -> u64 {
            a.max(b)
        }
    }

    #[test]
    fn batched_setup_metering_equals_the_per_vertex_sweep() {
        // The same computation with and without the fixed-size-state
        // declaration must bill identically: the batched setup path is
        // an aggregation of the sweep, not a different model. Includes
        // isolated vertices (hash-fallback residency goes through the
        // precomputed isolated counts in the batched path).
        let mut g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 9);
        g = Graph::new(g.num_vertices() + 7, g.edges().to_vec());
        for strategy in [
            GraphXStrategy::RandomVertexCut,
            GraphXStrategy::EdgePartition2D,
            GraphXStrategy::SourceCut,
        ] {
            let pg = strategy.partition(&g, 16);
            let declared = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
            let swept =
                run_pregel(&MaxLabelUndeclared, &pg, &cfg(), &PregelConfig::default()).unwrap();
            assert_eq!(declared.states, swept.states);
            assert_eq!(declared.sim, swept.sim, "{strategy}: setup billing drifted");
        }
    }

    #[test]
    fn prepared_run_is_bit_identical_to_run_pregel_and_reusable() {
        // One PreparedRun dispatching many jobs — same program repeatedly,
        // then a different program with a different message type — must
        // reproduce run_pregel bit for bit (states and SimReport) on every
        // dispatch, in every executor mode.
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 9);
        for mode in [
            ExecutorMode::Sequential,
            ExecutorMode::Parallel { threads: 4 },
            ExecutorMode::Auto,
        ] {
            let pg = Arc::new(GraphXStrategy::EdgePartition2D.partition(&g, 16));
            let opts = PregelConfig {
                executor: mode,
                ..Default::default()
            };
            let fresh = run_pregel(&MaxLabel, &pg, &cfg(), &opts).unwrap();
            let mut prepared = PreparedRun::new(pg.clone(), &cfg(), mode);
            for round in 0..3 {
                let r = prepared.run(&MaxLabel, &opts).unwrap();
                assert_eq!(r.states, fresh.states, "round {round}");
                assert_eq!(r.sim, fresh.sim, "round {round}: metering drifted");
                assert_eq!(r.supersteps, fresh.supersteps);
                assert_eq!(r.converged, fresh.converged);
            }
            // A variable-size-state program through the same handle
            // (exercises buffer re-initialization across message types).
            let fresh_trail = run_pregel(&GrowingTrail, &pg, &cfg(), &opts).unwrap();
            let trail = prepared.run(&GrowingTrail, &opts).unwrap();
            assert_eq!(trail.states, fresh_trail.states);
            assert_eq!(trail.sim, fresh_trail.sim);
            // And back to the first program: nothing leaked.
            let again = prepared.run(&MaxLabel, &opts).unwrap();
            assert_eq!(again.sim, fresh.sim);
        }
    }

    #[test]
    fn prepared_run_clamps_threads_to_its_budget() {
        // A handle prepared sequentially has no home shards; a parallel
        // request degrades to the sequential sweep — with identical
        // results, not a panic.
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 8);
        let pg = Arc::new(GraphXStrategy::RandomVertexCut.partition(&g, 8));
        let seq = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        let mut prepared = PreparedRun::new(pg, &cfg(), ExecutorMode::Sequential);
        assert_eq!(prepared.threads(), 1);
        let r = prepared
            .run(
                &MaxLabel,
                &PregelConfig {
                    executor: ExecutorMode::Parallel { threads: 4 },
                    ..Default::default()
                },
            )
            .unwrap();
        assert_eq!(r.states, seq.states);
        assert_eq!(r.sim, seq.sim);
    }

    #[test]
    fn prepared_run_recovers_after_oom() {
        // An OOM abort must not poison the reused sim/buffers: raising the
        // budget (fresh handle) or re-running a smaller program works, and
        // a failed dispatch leaves the next one bit-identical to fresh.
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 10);
        let pg = Arc::new(GraphXStrategy::RandomVertexCut.partition(&g, 8));
        let tiny = ClusterConfig {
            executor_memory_gb: 1e-6,
            ..ClusterConfig::paper_cluster()
        };
        let mut prepared = PreparedRun::new(pg.clone(), &tiny, ExecutorMode::Sequential);
        assert!(matches!(
            prepared.run(&MaxLabel, &PregelConfig::default()),
            Err(SimError::OutOfMemory { .. })
        ));
        // FatLabel OOMs too; MaxLabel keeps OOMing — what matters is that
        // the *same* error reproduces (no residual ledger state shifting
        // the failure point).
        let a = prepared
            .run(&MaxLabel, &PregelConfig::default())
            .unwrap_err();
        let b = run_pregel(&MaxLabel, &pg, &tiny, &PregelConfig::default()).unwrap_err();
        assert_eq!(a, b, "failure must be reproducible through a reused handle");
    }

    #[test]
    fn executor_mode_resolves_thread_counts() {
        assert_eq!(ExecutorMode::Sequential.threads(), 1);
        assert_eq!(ExecutorMode::Parallel { threads: 0 }.threads(), 1);
        assert_eq!(ExecutorMode::Parallel { threads: 6 }.threads(), 6);
        assert!(ExecutorMode::Auto.threads() >= 1);
    }

    #[test]
    fn scenario_faults_change_only_the_bill_never_the_states() {
        use cutfit_cluster::ScenarioConfig;
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 9);
        let pg = GraphXStrategy::EdgePartition2D.partition(&g, 16);
        let clean = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        let messy_cfg = cfg().with_scenario(ScenarioConfig::messy(77));
        let messy = run_pregel(&MaxLabel, &pg, &messy_cfg, &PregelConfig::default()).unwrap();
        assert_eq!(clean.states, messy.states);
        assert_eq!(clean.supersteps, messy.supersteps);
        assert_eq!(clean.sim.messages, messy.sim.messages);
        assert_eq!(clean.sim.remote_bytes, messy.sim.remote_bytes);
        assert!(messy.sim.total_seconds > clean.sim.total_seconds);
    }

    #[test]
    fn scenario_runs_are_mode_invariant_and_repeatable() {
        use cutfit_cluster::ScenarioConfig;
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 9);
        let pg = GraphXStrategy::RandomVertexCut.partition(&g, 16);
        let cluster = cfg().with_scenario(ScenarioConfig::messy(13));
        let seq = run_pregel(&MaxLabel, &pg, &cluster, &PregelConfig::default()).unwrap();
        for mode in [
            ExecutorMode::Sequential,
            ExecutorMode::Parallel { threads: 4 },
            ExecutorMode::Auto,
        ] {
            let opts = PregelConfig {
                executor: mode,
                ..Default::default()
            };
            let r = run_pregel(&MaxLabel, &pg, &cluster, &opts).unwrap();
            assert_eq!(r.states, seq.states, "{mode:?}");
            assert_eq!(r.sim, seq.sim, "fault schedule must be mode-invariant");
        }
    }

    #[test]
    fn checkpoint_interval_override_bills_checkpoints_on_any_cluster() {
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 9);
        let pg = GraphXStrategy::RandomVertexCut.partition(&g, 8);
        let plain = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        let opts = PregelConfig {
            checkpoint_interval: Some(2),
            ..Default::default()
        };
        let ckpt = run_pregel(&MaxLabel, &pg, &cfg(), &opts).unwrap();
        assert_eq!(plain.states, ckpt.states);
        assert_eq!(plain.sim.checkpoint_bytes, 0);
        assert!(
            ckpt.sim.checkpoint_bytes > 0,
            "resident state is snapshotted"
        );
        assert!(ckpt.sim.checkpoint_seconds > 0.0);
        assert!(ckpt.sim.total_seconds > plain.sim.total_seconds);
    }

    #[test]
    fn prepared_run_does_not_leak_checkpoint_override_across_dispatches() {
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 8);
        let pg = Arc::new(GraphXStrategy::RandomVertexCut.partition(&g, 8));
        let plain = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        let mut prepared = PreparedRun::new(pg, &cfg(), ExecutorMode::Sequential);
        let with_ckpt = prepared
            .run(
                &MaxLabel,
                &PregelConfig {
                    checkpoint_interval: Some(1),
                    ..Default::default()
                },
            )
            .unwrap();
        assert!(with_ckpt.sim.checkpoint_bytes > 0);
        // The next dispatch without the override is bit-identical to fresh.
        let after = prepared.run(&MaxLabel, &PregelConfig::default()).unwrap();
        assert_eq!(after.sim, plain.sim);
        assert_eq!(after.states, plain.states);
    }
}
