//! The metered Pregel loop.

use cutfit_cluster::{ClusterConfig, ClusterSim, SimError, SimReport};
use cutfit_graph::types::PartId;
use cutfit_graph::VertexId;
use cutfit_partition::{EdgePartition, PartitionedGraph};
use cutfit_util::hash::hash64;

use crate::program::{ActiveDirection, InitCtx, Messages, Triplet, VertexProgram};

/// How partitions are scanned within a superstep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutorMode {
    /// One partition after another on the calling thread.
    Sequential,
    /// Partitions scanned by a pool of OS threads. Results are identical to
    /// sequential execution: scans are independent and merges happen in
    /// deterministic partition order afterwards.
    Parallel {
        /// Number of worker threads.
        threads: usize,
    },
}

/// Engine options.
#[derive(Debug, Clone)]
pub struct PregelConfig {
    /// Maximum number of message supersteps (the paper runs PR and CC for
    /// 10 iterations).
    pub max_iterations: u64,
    /// Scan executor.
    pub executor: ExecutorMode,
    /// Whether to charge the initial dataset load from storage.
    pub charge_initial_load: bool,
}

impl Default for PregelConfig {
    fn default() -> Self {
        Self {
            max_iterations: 100,
            executor: ExecutorMode::Sequential,
            charge_initial_load: true,
        }
    }
}

/// Outcome of a Pregel run.
#[derive(Debug, Clone)]
pub struct PregelResult<V> {
    /// Final state of every vertex (isolated vertices hold their
    /// initial-apply value).
    pub states: Vec<V>,
    /// Message supersteps executed (not counting setup).
    pub supersteps: u64,
    /// True if the computation reached a fixpoint (no messages), false if
    /// it stopped at `max_iterations`.
    pub converged: bool,
    /// Simulated-cluster accounting.
    pub sim: SimReport,
}

/// Runs `program` over `pg` on the simulated `cluster`.
///
/// Returns [`SimError::OutOfMemory`] if the modelled memory demand exceeds
/// an executor's budget — partial results are discarded, as they would be
/// on the real system.
pub fn run_pregel<P: VertexProgram>(
    program: &P,
    pg: &PartitionedGraph,
    cluster: &ClusterConfig,
    opts: &PregelConfig,
) -> Result<PregelResult<P::State>, SimError> {
    let n = pg.num_vertices() as usize;
    let np = pg.num_parts();
    let mut sim = ClusterSim::new(cluster.clone(), np);
    let msg_overhead = cluster.cost.message_overhead_bytes;

    // Global degrees, derived from the partitioned edges.
    let mut out_deg = vec![0u32; n];
    let mut in_deg = vec![0u32; n];
    for part in pg.parts() {
        for &(ls, ld) in &part.edges {
            out_deg[part.global(ls) as usize] += 1;
            in_deg[part.global(ld) as usize] += 1;
        }
    }

    // Fallback partition for isolated vertices (GraphX hash-partitions the
    // vertex RDD; vertices without edges still live somewhere).
    let home_of = |v: VertexId| -> PartId {
        pg.master_of(v)
            .unwrap_or_else(|| (hash64(v) % np as u64) as PartId)
    };

    if opts.charge_initial_load {
        // Edge list (two ids per edge) plus one state record per vertex.
        sim.charge_load(pg.num_edges() * 16 + n as u64 * 8);
    }

    // --- Setup: initial apply on every vertex + replica broadcast. ---
    let ctx = InitCtx {
        out_degrees: &out_deg,
        in_degrees: &in_deg,
        num_vertices: pg.num_vertices(),
    };
    let init_msg = program.initial_msg();
    let mut states: Vec<P::State> = (0..n as u64)
        .map(|v| {
            let s = program.initial_state(v, &ctx);
            program.apply(v, &s, &init_msg)
        })
        .collect();
    let mut active = vec![true; n];
    for v in 0..n as u64 {
        let home = home_of(v);
        sim.ledger().vertex_ops(home, 1);
        let replicas = pg.routing().parts_of(v);
        if replicas.len() > 1 {
            let bytes = program.state_bytes(&states[v as usize]) + msg_overhead;
            let master_exec = cluster.executor_of(home);
            for &p in replicas {
                if p != home {
                    sim.ledger()
                        .send_exec(master_exec, cluster.executor_of(p), 1, bytes);
                }
            }
        }
    }
    charge_residency(&mut sim, pg, program, &states);
    sim.end_superstep()?;

    // --- Superstep loop. ---
    let mut supersteps = 0u64;
    let mut converged = false;
    while supersteps < opts.max_iterations {
        // 1. Scan: per-partition pre-aggregated messages.
        let partials = scan_all(
            program,
            pg,
            &states,
            &active,
            &out_deg,
            &in_deg,
            opts.executor,
        );

        // 2. Shuffle partials to masters, merging in partition order.
        let mut inbox: Vec<Option<P::Msg>> = (0..n).map(|_| None).collect();
        let mut msg_count = 0u64;
        for (p, (partial, matched)) in partials.into_iter().enumerate() {
            sim.ledger().edge_scans(p as PartId, matched);
            let part = &pg.parts()[p];
            for (local, maybe_msg) in partial.into_iter().enumerate() {
                let Some(msg) = maybe_msg else { continue };
                let v = part.global(local as u32);
                let master = home_of(v);
                let bytes = program.msg_bytes(&msg) + msg_overhead;
                sim.ledger().send_exec(
                    cluster.executor_of(p as PartId),
                    cluster.executor_of(master),
                    1,
                    bytes,
                );
                sim.ledger().local_bytes(master, bytes);
                msg_count += 1;
                let slot = &mut inbox[v as usize];
                *slot = Some(match slot.take() {
                    Some(acc) => program.merge(acc, msg),
                    None => msg,
                });
            }
        }

        if msg_count == 0 {
            converged = true;
            sim.end_superstep()?;
            break;
        }

        // 3. Apply at masters; 4. broadcast updated states to mirrors.
        let mut next_active = vec![program.always_active(); n];
        for v in 0..n {
            let Some(msg) = inbox[v].take() else { continue };
            let vid = v as u64;
            let master = home_of(vid);
            states[v] = program.apply(vid, &states[v], &msg);
            next_active[v] = true;
            let state_size = program.state_bytes(&states[v]);
            sim.ledger().vertex_ops(master, 1);
            sim.ledger().local_bytes(master, state_size);
            let bytes = state_size + msg_overhead;
            let master_exec = cluster.executor_of(master);
            for &p in pg.routing().parts_of(vid) {
                if p != master {
                    sim.ledger()
                        .send_exec(master_exec, cluster.executor_of(p), 1, bytes);
                }
            }
        }
        active = next_active;
        supersteps += 1;

        charge_residency(&mut sim, pg, program, &states);
        sim.end_superstep()?;
    }

    Ok(PregelResult {
        states,
        supersteps,
        converged,
        sim: sim.into_report(),
    })
}

/// Declares the per-partition resident footprint (edges + replica states)
/// for memory accounting.
fn charge_residency<P: VertexProgram>(
    sim: &mut ClusterSim,
    pg: &PartitionedGraph,
    program: &P,
    states: &[P::State],
) {
    sim.clear_resident();
    for (p, part) in pg.parts().iter().enumerate() {
        let state_bytes: u64 = part
            .vertices
            .iter()
            .map(|&v| program.state_bytes(&states[v as usize]))
            .sum();
        // 8 bytes per edge (two local u32 ids) + 8 per replica id entry.
        let bytes = part.edges.len() as u64 * 8 + part.vertices.len() as u64 * 8 + state_bytes;
        sim.set_resident(p as PartId, bytes);
    }
}

type Partial<M> = (Vec<Option<M>>, u64);

/// Scans all partitions, sequentially or in parallel, returning per-partition
/// pre-aggregated messages plus the matched-edge count for metering.
fn scan_all<P: VertexProgram>(
    program: &P,
    pg: &PartitionedGraph,
    states: &[P::State],
    active: &[bool],
    out_deg: &[u32],
    in_deg: &[u32],
    mode: ExecutorMode,
) -> Vec<Partial<P::Msg>> {
    match mode {
        ExecutorMode::Sequential => pg
            .parts()
            .iter()
            .map(|part| scan_partition(program, part, states, active, out_deg, in_deg))
            .collect(),
        ExecutorMode::Parallel { threads } => {
            let threads = threads.max(1);
            let parts = pg.parts();
            let mut results: Vec<Option<Partial<P::Msg>>> =
                (0..parts.len()).map(|_| None).collect();
            let chunk = parts.len().div_ceil(threads);
            if chunk == 0 {
                return Vec::new();
            }
            std::thread::scope(|scope| {
                for (part_chunk, result_chunk) in parts.chunks(chunk).zip(results.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for (part, slot) in part_chunk.iter().zip(result_chunk.iter_mut()) {
                            *slot = Some(scan_partition(
                                program, part, states, active, out_deg, in_deg,
                            ));
                        }
                    });
                }
            });
            results
                .into_iter()
                .map(|r| r.expect("all scanned"))
                .collect()
        }
    }
}

/// Scans one partition: map-side combine into a local-vertex-indexed array.
fn scan_partition<P: VertexProgram>(
    program: &P,
    part: &EdgePartition,
    states: &[P::State],
    active: &[bool],
    out_deg: &[u32],
    in_deg: &[u32],
) -> Partial<P::Msg> {
    let mut out: Vec<Option<P::Msg>> = (0..part.vertices.len()).map(|_| None).collect();
    let mut matched = 0u64;
    let dir = program.active_direction();
    let emit = |slot: &mut Option<P::Msg>, msg: P::Msg| {
        *slot = Some(match slot.take() {
            Some(acc) => program.merge(acc, msg),
            None => msg,
        });
    };
    for &(ls, ld) in &part.edges {
        let s = part.global(ls);
        let d = part.global(ld);
        let scan = match dir {
            ActiveDirection::Either => active[s as usize] || active[d as usize],
            ActiveDirection::Out => active[s as usize],
            ActiveDirection::In => active[d as usize],
            ActiveDirection::Both => active[s as usize] && active[d as usize],
        };
        if !scan {
            continue;
        }
        matched += 1;
        let triplet = Triplet {
            src: s,
            dst: d,
            src_state: &states[s as usize],
            dst_state: &states[d as usize],
            src_out_degree: out_deg[s as usize],
            dst_in_degree: in_deg[d as usize],
        };
        match program.send(&triplet) {
            Messages::None => {}
            Messages::ToSrc(m) => emit(&mut out[ls as usize], m),
            Messages::ToDst(m) => emit(&mut out[ld as usize], m),
            Messages::Both(ms, md) => {
                emit(&mut out[ls as usize], ms);
                emit(&mut out[ld as usize], md);
            }
        }
    }
    (out, matched)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cutfit_graph::{Edge, Graph};
    use cutfit_partition::{GraphXStrategy, Partitioner};

    /// Max-id label propagation: converges to the component-wise max.
    struct MaxLabel;
    impl VertexProgram for MaxLabel {
        type State = u64;
        type Msg = u64;
        fn name(&self) -> &'static str {
            "max-label"
        }
        fn initial_state(&self, v: VertexId, _ctx: &InitCtx<'_>) -> u64 {
            v
        }
        fn initial_msg(&self) -> u64 {
            0
        }
        fn apply(&self, _v: VertexId, state: &u64, msg: &u64) -> u64 {
            *state.max(msg)
        }
        fn send(&self, t: &Triplet<'_, u64>) -> Messages<u64> {
            match (t.src_state > t.dst_state, t.dst_state > t.src_state) {
                (true, _) => Messages::ToDst(*t.src_state),
                (_, true) => Messages::ToSrc(*t.dst_state),
                _ => Messages::None,
            }
        }
        fn merge(&self, a: u64, b: u64) -> u64 {
            a.max(b)
        }
    }

    fn two_components() -> Graph {
        Graph::new(
            7,
            vec![
                Edge::new(0, 1),
                Edge::new(1, 2),
                Edge::new(2, 3),
                Edge::new(4, 5),
            ],
        )
    }

    fn cfg() -> ClusterConfig {
        ClusterConfig::paper_cluster()
    }

    #[test]
    fn max_label_converges_per_component() {
        let pg = GraphXStrategy::RandomVertexCut.partition(&two_components(), 4);
        let r = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        assert!(r.converged);
        assert_eq!(r.states, vec![3, 3, 3, 3, 5, 5, 6]);
        assert!(r.supersteps >= 3, "information must travel the path");
        assert!(r.sim.total_seconds > 0.0);
    }

    #[test]
    fn isolated_vertices_keep_initial_state() {
        let g = Graph::new(3, vec![Edge::new(0, 1)]);
        let pg = GraphXStrategy::SourceCut.partition(&g, 2);
        let r = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        assert_eq!(r.states[2], 2);
    }

    #[test]
    fn max_iterations_caps_supersteps() {
        let g = Graph::new(50, (0..49).map(|v| Edge::new(v, v + 1)).collect());
        let pg = GraphXStrategy::EdgePartition1D.partition(&g, 4);
        let opts = PregelConfig {
            max_iterations: 5,
            ..Default::default()
        };
        let r = run_pregel(&MaxLabel, &pg, &cfg(), &opts).unwrap();
        assert_eq!(r.supersteps, 5);
        assert!(!r.converged);
    }

    #[test]
    fn parallel_equals_sequential() {
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 9);
        let pg = GraphXStrategy::EdgePartition2D.partition(&g, 16);
        let seq = run_pregel(&MaxLabel, &pg, &cfg(), &PregelConfig::default()).unwrap();
        let par = run_pregel(
            &MaxLabel,
            &pg,
            &cfg(),
            &PregelConfig {
                executor: ExecutorMode::Parallel { threads: 4 },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(seq.states, par.states);
        assert_eq!(seq.supersteps, par.supersteps);
        assert_eq!(seq.sim, par.sim, "metering must be identical too");
    }

    #[test]
    fn worse_partitioning_ships_more_remote_bytes() {
        // CRVC collocates both directions; RVC splits them — on a symmetric
        // graph RVC must replicate more and thus ship more bytes.
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 11).symmetrized();
        let crvc = GraphXStrategy::CanonicalRandomVertexCut.partition(&g, 32);
        let rvc = GraphXStrategy::RandomVertexCut.partition(&g, 32);
        let opts = PregelConfig {
            max_iterations: 3,
            ..Default::default()
        };
        let a = run_pregel(&MaxLabel, &crvc, &cfg(), &opts).unwrap();
        let b = run_pregel(&MaxLabel, &rvc, &cfg(), &opts).unwrap();
        assert!(
            b.sim.remote_bytes > a.sim.remote_bytes,
            "rvc {} vs crvc {}",
            b.sim.remote_bytes,
            a.sim.remote_bytes
        );
    }

    #[test]
    fn activity_tracking_reduces_scans_over_time() {
        // After convergence regions stop being scanned: total messages are
        // finite even with a generous iteration cap.
        let g = two_components();
        let pg = GraphXStrategy::CanonicalRandomVertexCut.partition(&g, 2);
        let r = run_pregel(
            &MaxLabel,
            &pg,
            &cfg(),
            &PregelConfig {
                max_iterations: 1000,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(r.converged);
        assert!(r.supersteps < 10);
    }

    #[test]
    fn oom_is_reported() {
        let g = cutfit_datagen::rmat(&cutfit_datagen::RmatConfig::default(), 10);
        let pg = GraphXStrategy::RandomVertexCut.partition(&g, 8);
        let tiny = ClusterConfig {
            executor_memory_gb: 1e-6,
            ..ClusterConfig::paper_cluster()
        };
        let err = run_pregel(&MaxLabel, &pg, &tiny, &PregelConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::OutOfMemory { .. }));
    }
}
