//! The vertex-program abstraction (GraphX `Pregel` signature).

use cutfit_graph::VertexId;

/// Messages produced by scanning one edge triplet. An enum rather than a
/// vector: no algorithm in this workspace sends more than one message per
/// endpoint per edge, and avoiding the allocation keeps scans cheap.
#[derive(Debug, Clone, PartialEq)]
pub enum Messages<M> {
    /// Send nothing.
    None,
    /// Message to the source vertex.
    ToSrc(M),
    /// Message to the destination vertex.
    ToDst(M),
    /// Messages to both endpoints.
    Both(M, M),
}

/// Which endpoint must be active for an edge to be scanned — GraphX's
/// `activeDirection` optimisation that lets converged regions of the graph
/// stop costing anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActiveDirection {
    /// Scan if either endpoint is active (label propagation).
    Either,
    /// Scan only if the source is active (PageRank-style push).
    Out,
    /// Scan only if the destination is active.
    In,
    /// Scan only if both endpoints are active.
    Both,
}

/// A read-only view of one edge and its endpoint states during a scan.
#[derive(Debug)]
pub struct Triplet<'a, V> {
    /// Source vertex id.
    pub src: VertexId,
    /// Destination vertex id.
    pub dst: VertexId,
    /// Source state (replica value, equal to the master's after broadcast).
    pub src_state: &'a V,
    /// Destination state.
    pub dst_state: &'a V,
    /// Global out-degree of the source (GraphX exposes this via edge
    /// attributes for PageRank's weight normalisation).
    pub src_out_degree: u32,
    /// Global in-degree of the destination.
    pub dst_in_degree: u32,
}

/// Initialisation context handed to [`VertexProgram::initial_state`].
#[derive(Debug)]
pub struct InitCtx<'a> {
    /// Global out-degrees.
    pub out_degrees: &'a [u32],
    /// Global in-degrees.
    pub in_degrees: &'a [u32],
    /// Total vertices.
    pub num_vertices: u64,
}

/// A Pregel vertex program: the GraphX `Pregel(vprog, sendMsg, mergeMsg)`
/// triple plus sizing callbacks used by the cluster cost model.
///
/// `merge` must be commutative and associative — the engine relies on this
/// to produce identical results under sequential and parallel execution
/// (property-tested in the workspace integration suite).
pub trait VertexProgram: Sync {
    /// Vertex state type.
    type State: Clone + Send + Sync;
    /// Message type.
    type Msg: Clone + Send + Sync;

    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Initial state of vertex `v`.
    fn initial_state(&self, v: VertexId, ctx: &InitCtx<'_>) -> Self::State;

    /// The message delivered to every vertex before the first superstep
    /// (GraphX's `initialMsg`).
    fn initial_msg(&self) -> Self::Msg;

    /// Vertex program: combines the current state with the merged inbound
    /// message, returning the new state.
    fn apply(&self, v: VertexId, state: &Self::State, msg: &Self::Msg) -> Self::State;

    /// Scan function: messages emitted by one edge triplet.
    fn send(&self, triplet: &Triplet<'_, Self::State>) -> Messages<Self::Msg>;

    /// Commutative, associative message combiner.
    fn merge(&self, a: Self::Msg, b: Self::Msg) -> Self::Msg;

    /// Which endpoint activity triggers a scan of an edge.
    fn active_direction(&self) -> ActiveDirection {
        ActiveDirection::Either
    }

    /// When true, every vertex stays active every superstep — the semantics
    /// of GraphX's *static* PageRank, which recomputes all ranks each round
    /// regardless of message receipt. Programs returning true terminate via
    /// `max_iterations` only.
    fn always_active(&self) -> bool {
        false
    }

    /// Serialized size of a state value, used for broadcast billing and
    /// memory accounting. Defaults to the in-memory size.
    fn state_bytes(&self, _state: &Self::State) -> u64 {
        std::mem::size_of::<Self::State>() as u64
    }

    /// `Some(size)` when every state serializes to the same `size` bytes —
    /// i.e. [`VertexProgram::state_bytes`] is a constant function. Declaring
    /// it lets the engine account partition residency incrementally (one
    /// multiplication per partition at setup, zero work per superstep)
    /// instead of re-summing every replica's state each superstep.
    ///
    /// Programs whose state size varies (SSSP's distance maps, set-union
    /// states) must leave the default `None`.
    fn fixed_state_bytes(&self) -> Option<u64> {
        None
    }

    /// Serialized size of a message, used for shuffle billing.
    fn msg_bytes(&self, _msg: &Self::Msg) -> u64 {
        std::mem::size_of::<Self::Msg>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl VertexProgram for Dummy {
        type State = u64;
        type Msg = u64;
        fn name(&self) -> &'static str {
            "dummy"
        }
        fn initial_state(&self, v: VertexId, _ctx: &InitCtx<'_>) -> u64 {
            v
        }
        fn initial_msg(&self) -> u64 {
            0
        }
        fn apply(&self, _v: VertexId, state: &u64, msg: &u64) -> u64 {
            state + msg
        }
        fn send(&self, t: &Triplet<'_, u64>) -> Messages<u64> {
            Messages::ToDst(*t.src_state)
        }
        fn merge(&self, a: u64, b: u64) -> u64 {
            a + b
        }
    }

    #[test]
    fn default_sizes_are_memory_sizes() {
        let d = Dummy;
        assert_eq!(d.state_bytes(&7), 8);
        assert_eq!(d.msg_bytes(&7), 8);
        assert_eq!(d.active_direction(), ActiveDirection::Either);
    }

    #[test]
    fn messages_enum_is_cheap() {
        assert!(std::mem::size_of::<Messages<u64>>() <= 24);
    }
}
