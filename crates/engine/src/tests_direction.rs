//! Tests for `ActiveDirection` semantics and activity bookkeeping: the
//! engine must scan exactly the edges GraphX would scan, because metered
//! scan counts feed the cost model.

use cutfit_cluster::ClusterConfig;
use cutfit_graph::{Edge, Graph, VertexId};
use cutfit_partition::{GraphXStrategy, Partitioner};

use crate::pregel::{run_pregel, PregelConfig};
use crate::program::{ActiveDirection, InitCtx, Messages, Triplet, VertexProgram};

/// A program that counts, via the sim report, how many edges get scanned:
/// only vertex 0 is ever active after the first round (it keeps sending to
/// itself), everything else goes quiet immediately.
struct OnlyZeroActive {
    direction: ActiveDirection,
}

impl VertexProgram for OnlyZeroActive {
    type State = u64;
    type Msg = u64;

    fn name(&self) -> &'static str {
        "only-zero-active"
    }

    fn initial_state(&self, v: VertexId, _ctx: &InitCtx<'_>) -> u64 {
        v
    }

    fn initial_msg(&self) -> u64 {
        0
    }

    fn apply(&self, _v: VertexId, state: &u64, msg: &u64) -> u64 {
        state.wrapping_add(*msg)
    }

    fn send(&self, t: &Triplet<'_, u64>) -> Messages<u64> {
        // Keep vertex 0 perpetually active; nothing else receives messages.
        if t.src == 0 {
            Messages::ToSrc(1)
        } else {
            Messages::None
        }
    }

    fn merge(&self, a: u64, b: u64) -> u64 {
        a + b
    }

    fn active_direction(&self) -> ActiveDirection {
        self.direction
    }
}

/// Fan graph: 0 -> 1..=3 plus 4 -> 0 plus a detached edge 5 -> 6.
fn fan() -> Graph {
    Graph::new(
        7,
        vec![
            Edge::new(0, 1),
            Edge::new(0, 2),
            Edge::new(0, 3),
            Edge::new(4, 0),
            Edge::new(5, 6),
        ],
    )
}

fn run(direction: ActiveDirection, iterations: u64) -> cutfit_cluster::SimReport {
    let pg = GraphXStrategy::SourceCut.partition(&fan(), 2);
    let r = run_pregel(
        &OnlyZeroActive { direction },
        &pg,
        &ClusterConfig::paper_cluster(),
        &PregelConfig {
            max_iterations: iterations,
            charge_initial_load: false,
            ..Default::default()
        },
    )
    .expect("small graph fits");
    r.sim
}

#[test]
fn out_direction_scans_only_active_sources_after_warmup() {
    // Round 1 scans everything (all active). Rounds 2+ scan only 0's
    // out-edges (3 of them) under Out.
    let two = run(ActiveDirection::Out, 2);
    let three = run(ActiveDirection::Out, 3);
    // Exactly 3 more edge scans per extra round, observable through message
    // counts: each extra round ships exactly 1 message (the 0 -> 0 self
    // message aggregated from 3 scans) plus 1 broadcastless apply.
    assert_eq!(three.supersteps, two.supersteps + 1);
    assert!(three.messages > two.messages);
}

#[test]
fn in_direction_scans_edges_with_active_destination() {
    // After warmup only vertex 0 is active; under In, the scanned edge set
    // is {4 -> 0}, whose send produces nothing (src != 0 branch sends only
    // for src == 0 ... which is not scanned) — so the computation converges.
    let pg = GraphXStrategy::SourceCut.partition(&fan(), 2);
    let r = run_pregel(
        &OnlyZeroActive {
            direction: ActiveDirection::In,
        },
        &pg,
        &ClusterConfig::paper_cluster(),
        &PregelConfig {
            max_iterations: 50,
            charge_initial_load: false,
            ..Default::default()
        },
    )
    .expect("fits");
    assert!(r.converged, "In-direction starves the self-loop driver");
    assert!(r.supersteps < 5);
}

#[test]
fn both_direction_requires_both_endpoints_active() {
    let pg = GraphXStrategy::SourceCut.partition(&fan(), 2);
    let r = run_pregel(
        &OnlyZeroActive {
            direction: ActiveDirection::Both,
        },
        &pg,
        &ClusterConfig::paper_cluster(),
        &PregelConfig {
            max_iterations: 50,
            charge_initial_load: false,
            ..Default::default()
        },
    )
    .expect("fits");
    // After round 1 only vertex 0 stays active; its out-edges have inactive
    // destinations, so nothing is scanned and the run converges.
    assert!(r.converged);
    assert!(r.supersteps <= 2);
}

#[test]
fn either_direction_keeps_the_driver_alive() {
    let r = run(ActiveDirection::Either, 10);
    // The self-driving vertex keeps producing messages forever.
    assert_eq!(r.supersteps, 10 + 1, "setup + 10 message rounds");
}

/// always_active forces full scans even when no messages arrive anywhere.
struct Sterile;

impl VertexProgram for Sterile {
    type State = u32;
    type Msg = u32;

    fn name(&self) -> &'static str {
        "sterile"
    }

    fn initial_state(&self, _v: VertexId, _ctx: &InitCtx<'_>) -> u32 {
        0
    }

    fn initial_msg(&self) -> u32 {
        0
    }

    fn apply(&self, _v: VertexId, state: &u32, _msg: &u32) -> u32 {
        *state
    }

    fn send(&self, _t: &Triplet<'_, u32>) -> Messages<u32> {
        Messages::None
    }

    fn merge(&self, a: u32, _b: u32) -> u32 {
        a
    }

    fn always_active(&self) -> bool {
        true
    }
}

#[test]
fn sterile_program_still_converges_on_zero_messages() {
    // Even with always_active, a program that sends nothing terminates: the
    // zero-message check fires before activity is refreshed.
    let pg = GraphXStrategy::RandomVertexCut.partition(&fan(), 2);
    let r = run_pregel(
        &Sterile,
        &pg,
        &ClusterConfig::paper_cluster(),
        &PregelConfig {
            max_iterations: 50,
            ..Default::default()
        },
    )
    .expect("fits");
    assert!(r.converged);
    assert_eq!(r.supersteps, 0);
}

#[test]
fn initial_broadcast_is_metered() {
    // Setup must bill one shipment per non-master replica: a star under DC
    // replicates the hub into every partition.
    let star = Graph::new(9, (1..9).map(|v| Edge::new(0, v)).collect());
    let pg = GraphXStrategy::DestinationCut.partition(&star, 4);
    let r = run_pregel(
        &Sterile,
        &pg,
        &ClusterConfig::paper_cluster(),
        &PregelConfig {
            max_iterations: 1,
            charge_initial_load: false,
            ..Default::default()
        },
    )
    .expect("fits");
    // Hub is in 4 partitions -> 3 mirror shipments; leaves are single-copy.
    assert_eq!(r.sim.messages, 3);
}
