//! Golden determinism tests: generated datasets are pinned to exact edge
//! checksums. The workspace promises that recorded seeds stay valid forever
//! (hand-rolled PRNG, no dependency on external crate versions); these
//! constants make any accidental change to a generator, to the PRNG, or to
//! the hash functions a loud test failure instead of a silent drift of all
//! experiment results.
//!
//! If you change a generator *on purpose*, regenerate the constants with
//! the checksum fold below and update EXPERIMENTS.md.

use cutfit::prelude::*;
use cutfit::util::hash::hash_pair;

/// Order-independent-ish fold over the edge multiset (XOR of keyed hashes).
fn edge_checksum(g: &Graph) -> u64 {
    g.edges().iter().fold(0u64, |acc, e| {
        acc ^ hash_pair(e.src, e.dst)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left((e.src % 63) as u32)
    })
}

const GOLDEN: [(&str, u64, u64, u64); 9] = [
    ("RoadNet-PA", 2153, 5856, 0x452864b2a063f088),
    ("YouTube", 2270, 5946, 0x7cd765750c693841),
    ("RoadNet-TX", 2748, 7498, 0x4eabcb644cae733),
    ("Pocek", 3266, 48730, 0x36d0bba7ca62b382),
    ("RoadNet-CA", 3914, 10734, 0x8388acc957eb7069),
    ("Orkut", 6145, 234296, 0x34ca334823f1a5ee),
    ("socLiveJournal", 9695, 122545, 0x633cf21567bb1ea3),
    ("follow-jul", 33047, 229156, 0x6ff51d0dd4acf081),
    ("follow-dec", 52355, 373138, 0x97c90e9c1e8966c3),
];

#[test]
fn generated_datasets_match_golden_checksums() {
    for (name, vertices, edges, checksum) in GOLDEN {
        let profile = DatasetProfile::by_name(name).expect("known profile");
        let g = profile.generate(0.002, 42);
        assert_eq!(g.num_vertices(), vertices, "{name}: vertex count drifted");
        assert_eq!(g.num_edges(), edges, "{name}: edge count drifted");
        assert_eq!(
            edge_checksum(&g),
            checksum,
            "{name}: edge content drifted — generator, PRNG, or hash changed"
        );
    }
}

#[test]
fn partitioning_of_golden_graph_is_pinned() {
    // One partitioning fingerprint on top: catches changes to the hash
    // partitioners themselves.
    let g = DatasetProfile::pocek().generate(0.002, 42);
    let mut acc = 0u64;
    for strategy in GraphXStrategy::all() {
        for (i, p) in strategy.assign_edges(&g, 128).into_iter().enumerate() {
            acc = acc
                .rotate_left(7)
                .wrapping_add(hash_pair(i as u64, p as u64));
        }
    }
    // Pinned on first recording; regenerate with the `golden_gen` example.
    assert_eq!(acc, 0xbbf8051c6de9c0bd);
}

/// The engine's parallel shuffle/apply AND its frontier-driven sparse scan
/// path must be *metering-identical* to the sequential dense sweep: not
/// just the same vertex states but the same [`SimReport`] bit for bit, for
/// every partitioning strategy × executor mode × scan mode, for both a
/// fixed-size-state program (PageRank) and a variable-size-state program
/// (SSSP, which also exercises the incremental residency deltas and, being
/// a converging frontier algorithm, actually takes the sparse path under
/// `ScanMode::Auto`).
#[test]
fn executors_are_bit_identical_across_modes_on_all_strategies() {
    use cutfit::algorithms::{pagerank, sssp, Sssp};

    let g = DatasetProfile::youtube().generate(0.002, 42);
    let cluster = ClusterConfig::paper_cluster();
    let modes = [
        (ExecutorMode::Sequential, ScanMode::Dense),
        (ExecutorMode::Sequential, ScanMode::Auto),
        (ExecutorMode::Parallel { threads: 4 }, ScanMode::Dense),
        (ExecutorMode::Parallel { threads: 4 }, ScanMode::Auto),
        (ExecutorMode::Auto, ScanMode::Sparse),
        (ExecutorMode::Auto, ScanMode::Auto),
    ];
    let landmarks = Sssp::pick_landmarks(g.num_vertices(), 3, 7);

    for strategy in GraphXStrategy::all() {
        let pg = strategy.partition(&g, 16);

        let pr: Vec<_> = modes
            .iter()
            .map(|&(executor, scan_mode)| {
                let opts = PregelConfig {
                    executor,
                    scan_mode,
                    ..Default::default()
                };
                pagerank(&pg, &cluster, 5, &opts).expect("fits in memory")
            })
            .collect();
        for r in &pr[1..] {
            assert_eq!(pr[0].states, r.states, "{strategy}: PR states drifted");
            assert_eq!(pr[0].sim, r.sim, "{strategy}: PR metering drifted");
            assert_eq!(pr[0].supersteps, r.supersteps, "{strategy}");
        }

        let sp: Vec<_> = modes
            .iter()
            .map(|&(executor, scan_mode)| {
                let opts = PregelConfig {
                    executor,
                    scan_mode,
                    ..Default::default()
                };
                sssp(&pg, &cluster, landmarks.clone(), 10_000, &opts).expect("fits in memory")
            })
            .collect();
        for r in &sp[1..] {
            assert_eq!(sp[0].states, r.states, "{strategy}: SSSP states drifted");
            assert_eq!(sp[0].sim, r.sim, "{strategy}: SSSP metering drifted");
            assert_eq!(sp[0].supersteps, r.supersteps, "{strategy}");
        }
    }
}
