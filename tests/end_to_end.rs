//! End-to-end integration: dataset profiles → partitioning → algorithms,
//! validated against single-threaded reference implementations.

use cutfit::prelude::*;
use cutfit_algorithms::{reference_components, reference_pagerank, reference_sssp, sssp, Sssp};
use cutfit_graph::analysis::count_triangles;

const SCALE: f64 = 0.0015;

fn cluster() -> ClusterConfig {
    ClusterConfig::paper_cluster()
}

#[test]
fn pagerank_matches_reference_on_every_profile() {
    for profile in DatasetProfile::all() {
        let graph = profile.generate(SCALE, 11);
        let pg = GraphXStrategy::EdgePartition2D.partition(&graph, 32);
        let engine = cutfit::algorithms::pagerank(&pg, &cluster(), 5, &Default::default())
            .expect("fits in memory");
        let reference = reference_pagerank(&graph, 5);
        for (v, (a, b)) in engine.states.iter().zip(&reference).enumerate() {
            assert!(
                (a - b).abs() < 1e-9 * b.abs().max(1.0),
                "{}: vertex {v}: engine {a} vs reference {b}",
                profile.name
            );
        }
    }
}

#[test]
fn connected_components_match_union_find_on_every_profile() {
    for profile in DatasetProfile::all() {
        let graph = profile.generate(SCALE, 13);
        let reference = reference_components(&graph);
        let pg = GraphXStrategy::CanonicalRandomVertexCut.partition(&graph, 16);
        let r =
            cutfit::algorithms::connected_components(&pg, &cluster(), 100_000, &Default::default())
                .expect("fits in memory");
        assert!(r.converged, "{}", profile.name);
        assert_eq!(r.states, reference, "{}", profile.name);
    }
}

#[test]
fn triangle_counts_match_oracle_on_every_profile() {
    for profile in DatasetProfile::all() {
        let graph = profile.generate(SCALE, 17);
        let expected = count_triangles(&graph);
        let r = triangle_count(&graph, &GraphXStrategy::DestinationCut, 16, &cluster())
            .expect("fits in memory");
        assert_eq!(r.total, expected, "{}", profile.name);
    }
}

#[test]
fn sssp_matches_reverse_bfs_on_social_profiles() {
    for profile in DatasetProfile::social() {
        let graph = profile.generate(SCALE, 19);
        let landmarks = Sssp::pick_landmarks(graph.num_vertices(), 3, 23);
        let reference = reference_sssp(&graph, &landmarks);
        let pg = GraphXStrategy::EdgePartition1D.partition(&graph, 16);
        let r = sssp(&pg, &cluster(), landmarks, 10_000, &Default::default())
            .expect("social graphs converge quickly");
        assert!(r.converged, "{}", profile.name);
        assert_eq!(r.states, reference, "{}", profile.name);
    }
}

#[test]
fn algorithm_results_are_invariant_to_partitioner_and_granularity() {
    let graph = DatasetProfile::pocek().generate(SCALE, 29);
    let reference = reference_components(&graph);
    for strategy in GraphXStrategy::all() {
        for np in [1u32, 7, 32, 128] {
            let pg = strategy.partition(&graph, np);
            let r = cutfit::algorithms::connected_components(
                &pg,
                &cluster(),
                100_000,
                &Default::default(),
            )
            .expect("fits");
            assert_eq!(r.states, reference, "{strategy} @ {np}");
        }
    }
}

#[test]
fn streaming_partitioners_run_the_full_pipeline_too() {
    use cutfit::partition::{Dbh, GreedyVertexCut, Hdrf};
    let graph = DatasetProfile::youtube().generate(SCALE, 31);
    let reference = reference_components(&graph);
    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(Dbh),
        Box::new(GreedyVertexCut::default()),
        Box::new(Hdrf::default()),
    ];
    for p in partitioners {
        let pg = p.partition(&graph, 16);
        let r =
            cutfit::algorithms::connected_components(&pg, &cluster(), 100_000, &Default::default())
                .expect("fits");
        assert_eq!(r.states, reference, "{}", p.name());
    }
}

#[test]
fn experiment_harness_full_grid_smoke() {
    let config = ExperimentConfig {
        scale: 0.001,
        seed: 5,
        num_parts: vec![16, 32],
        datasets: vec![DatasetProfile::youtube(), DatasetProfile::pocek()],
        partitioners: GraphXStrategy::all().to_vec(),
        cluster: cluster(),
        executor: ExecutorMode::Sequential,
        scale_memory: false,
    };
    for algo in Algorithm::paper_suite(3) {
        let result = run_experiment(&algo, &config);
        assert_eq!(result.observations.len(), 2 * 2 * 6, "{}", algo.abbrev());
        let completed = result
            .observations
            .iter()
            .filter(|o| o.time_s.is_some())
            .count();
        assert!(completed > 0, "{} all failed", algo.abbrev());
        // Times are positive and finite.
        for o in &result.observations {
            if let Some(t) = o.time_s {
                assert!(t.is_finite() && t > 0.0);
            }
        }
    }
}
