//! Advisor behaviour across the dataset catalogue: the recommendations must
//! be actionable and the measured mode must actually minimise its metric.

use cutfit::prelude::*;

const SCALE: f64 = 0.002;

#[test]
fn measured_choice_minimises_the_class_metric() {
    let advisor = Advisor::scaled(SCALE);
    for profile in DatasetProfile::all() {
        let graph = profile.generate(SCALE, 42);
        for class in [AlgorithmClass::EdgeBound, AlgorithmClass::VertexStateBound] {
            let choice = advisor.recommend_measured(class, &graph, 32, &[]);
            // Winner's metric value is the minimum of the ranking.
            let winner_value = choice.ranking[0].1;
            for &(s, v) in &choice.ranking {
                assert!(
                    v >= winner_value,
                    "{}: {s} has {v} < winner {winner_value}",
                    profile.name
                );
            }
            // And it matches a direct measurement.
            let direct =
                PartitionMetrics::of(&choice.strategy.partition(&graph, 32)).get(choice.metric);
            assert_eq!(direct, winner_value, "{}", profile.name);
        }
    }
}

#[test]
fn heuristic_tracks_dataset_size() {
    let advisor = Advisor::scaled(SCALE);
    let small = DatasetProfile::youtube().generate(SCALE, 42);
    let large = DatasetProfile::follow_dec().generate(SCALE, 42);
    let r_small = advisor.recommend(AlgorithmClass::EdgeBound, &small, 128);
    let r_large = advisor.recommend(AlgorithmClass::EdgeBound, &large, 128);
    assert_eq!(r_small.strategy, GraphXStrategy::DestinationCut);
    assert_eq!(r_large.strategy, GraphXStrategy::EdgePartition2D);
    assert!(!r_small.rationale.is_empty());
}

#[test]
fn measured_pick_avoids_the_worst_on_ordinary_social_graphs() {
    let advisor = Advisor::scaled(SCALE);
    let cluster = ClusterConfig::paper_cluster();
    let graph = DatasetProfile::pocek().generate(SCALE, 42);
    let choice = advisor.recommend_measured(AlgorithmClass::EdgeBound, &graph, 32, &[]);
    let mut times = std::collections::HashMap::new();
    for strategy in GraphXStrategy::all() {
        let pg = strategy.partition(&graph, 32);
        let r = cutfit::algorithms::pagerank(&pg, &cluster, 10, &Default::default()).expect("fits");
        times.insert(strategy.abbrev(), r.sim.total_seconds);
    }
    let picked = times[choice.strategy.abbrev()];
    let worst = times.values().copied().fold(0.0f64, f64::max);
    assert!(
        picked < worst,
        "picked {} ({picked}) must beat the worst ({worst})",
        choice.strategy
    );
}

#[test]
fn the_1d_trap_on_crawl_graphs_is_real() {
    // Regression pin for the paper's own tension between Table 2 and
    // Figure 3: on the follow crawls, 1D/SC minimise CommCost (superstar
    // sources collocate their whole out-edge lists) yet lose at runtime to
    // 2D/DC because of the load imbalance they create. Metric-only
    // selection falls into this trap; the simulated probe does not.
    let advisor = Advisor::scaled(SCALE);
    let cluster = ClusterConfig::paper_cluster();
    let graph = DatasetProfile::follow_jul().generate(SCALE, 42);

    let metric_pick = advisor.recommend_measured(AlgorithmClass::EdgeBound, &graph, 32, &[]);
    assert!(
        matches!(
            metric_pick.strategy,
            GraphXStrategy::EdgePartition1D | GraphXStrategy::SourceCut
        ),
        "CommCost is minimised by the out-edge collocators, got {}",
        metric_pick.strategy
    );

    let mut times = std::collections::HashMap::new();
    for strategy in GraphXStrategy::all() {
        let pg = strategy.partition(&graph, 32);
        let r = cutfit::algorithms::pagerank(&pg, &cluster, 10, &Default::default()).expect("fits");
        times.insert(strategy.abbrev(), r.sim.total_seconds);
    }
    let best = times.values().copied().fold(f64::INFINITY, f64::min);
    assert!(
        times[metric_pick.strategy.abbrev()] > best,
        "the trap: min-CommCost is not the fastest on a crawl graph"
    );

    let probe_pick = advisor.recommend_simulated(
        &Algorithm::PageRank { iterations: 10 },
        &graph,
        32,
        &cluster,
        &[],
    );
    assert!(
        times[probe_pick.strategy.abbrev()] < times[metric_pick.strategy.abbrev()],
        "the probe mode escapes the trap"
    );
}

#[test]
fn simulated_pick_lands_near_the_oracle_for_pagerank() {
    // The probe-based mode optimises predicted time directly and should
    // recover most of the best-vs-worst spread everywhere.
    let advisor = Advisor::scaled(SCALE);
    let cluster = ClusterConfig::paper_cluster();
    let algorithm = Algorithm::PageRank { iterations: 10 };
    for profile in [DatasetProfile::pocek(), DatasetProfile::follow_jul()] {
        let graph = profile.generate(SCALE, 42);
        let choice = advisor.recommend_simulated(&algorithm, &graph, 32, &cluster, &[]);
        let mut times = std::collections::HashMap::new();
        for strategy in GraphXStrategy::all() {
            let pg = strategy.partition(&graph, 32);
            let r =
                cutfit::algorithms::pagerank(&pg, &cluster, 10, &Default::default()).expect("fits");
            times.insert(strategy.abbrev(), r.sim.total_seconds);
        }
        let picked = times[choice.strategy.abbrev()];
        let worst = times.values().copied().fold(0.0f64, f64::max);
        let best = times.values().copied().fold(f64::INFINITY, f64::min);
        assert!(
            picked <= best + 0.35 * (worst - best),
            "{}: probe picked {} ({picked}) vs oracle range [{best}, {worst}]",
            profile.name,
            choice.strategy
        );
    }
}

#[test]
fn recommendations_cover_both_metric_families() {
    let advisor = Advisor::default();
    let graph = DatasetProfile::youtube().generate(SCALE, 42);
    let edge = advisor.recommend(AlgorithmClass::EdgeBound, &graph, 64);
    let vertex = advisor.recommend(AlgorithmClass::VertexStateBound, &graph, 64);
    assert_eq!(edge.metric, MetricKind::CommCost);
    assert_eq!(vertex.metric, MetricKind::Cut);
}
