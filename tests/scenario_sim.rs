//! Scenario determinism pins: a degraded cluster — heterogeneous speeds,
//! stragglers, clock drift, contention, failures with checkpoint/replay
//! recovery — must stay a *pure function* of `(ScenarioConfig, work)`.
//! Same seed ⇒ bit-identical `SimReport` and vertex states across executor
//! modes and repeated runs; zeroed knobs ⇒ field-for-field the idealized
//! sim; faults change the bill, never the answer; and every failure path
//! is an `Err`, not a panic, leaving the sim resettable.

use cutfit::algorithms::PageRank;
use cutfit::prelude::*;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2u64..100, 0usize..300).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m).prop_map(move |pairs| {
            Graph::new(n, pairs.into_iter().map(|(s, d)| Edge::new(s, d)).collect())
        })
    })
}

fn arb_strategy() -> impl Strategy<Value = GraphXStrategy> {
    proptest::sample::select(vec![
        GraphXStrategy::RandomVertexCut,
        GraphXStrategy::EdgePartition2D,
        GraphXStrategy::DestinationCut,
        GraphXStrategy::CanonicalRandomVertexCut,
        GraphXStrategy::SourceCut,
    ])
}

const MODES: [ExecutorMode; 3] = [
    ExecutorMode::Sequential,
    ExecutorMode::Parallel { threads: 4 },
    ExecutorMode::Auto,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every scenario preset replays bit-identically: for any seed, the
    /// preset's `SimReport` *and* vertex states are the same under
    /// Sequential, Parallel{4}, and Auto execution, and under repetition.
    /// Scenario randomness is counter-based, so executor scheduling can
    /// never reorder its draws.
    #[test]
    fn every_preset_is_bit_reproducible_across_modes_and_repeats(
        graph in arb_graph(),
        strategy in arb_strategy(),
        num_parts in 1u32..16,
        seed in 0u64..u64::MAX,
        preset_idx in 0usize..6,
    ) {
        let presets = ScenarioConfig::presets(seed);
        let (name, scenario) = presets[preset_idx];
        let cluster = ClusterConfig::paper_cluster().with_scenario(scenario);
        let pg = strategy.partition(&graph, num_parts);
        let opts = |mode| PregelConfig {
            executor: mode,
            max_iterations: 4,
            ..Default::default()
        };
        let baseline = run_pregel(&PageRank, &pg, &cluster, &opts(MODES[0])).unwrap();
        for mode in MODES {
            for round in 0..2 {
                let r = run_pregel(&PageRank, &pg, &cluster, &opts(mode)).unwrap();
                prop_assert_eq!(
                    &r.states, &baseline.states,
                    "{name}: states, {mode:?} round {round}"
                );
                prop_assert_eq!(
                    &r.sim, &baseline.sim,
                    "{name}: bill, {mode:?} round {round}"
                );
            }
        }
    }

    /// Backward-compat pin: a zeroed `ScenarioConfig` — whatever its seed —
    /// bills field-for-field identically to today's scenario-free cluster.
    /// The seed alone must be inert.
    #[test]
    fn zeroed_scenario_is_field_for_field_legacy(
        graph in arb_graph(),
        strategy in arb_strategy(),
        mode in proptest::sample::select(MODES.to_vec()),
        num_parts in 1u32..16,
        seed in 0u64..u64::MAX,
    ) {
        let zeroed = ScenarioConfig { seed, ..Default::default() };
        prop_assert!(zeroed.is_off());
        let legacy = ClusterConfig::paper_cluster();
        let scenic = ClusterConfig::paper_cluster().with_scenario(zeroed);
        for algo in [
            Algorithm::PageRank { iterations: 4 },
            Algorithm::ConnectedComponents { max_iterations: 6 },
            Algorithm::Triangles,
        ] {
            let a = algo.run(&graph, &strategy, num_parts, &legacy, mode).unwrap();
            let b = algo.run(&graph, &strategy, num_parts, &scenic, mode).unwrap();
            prop_assert_eq!(&a.sim, &b.sim, "{}", algo.abbrev());
            prop_assert_eq!(&a.metrics, &b.metrics);
            prop_assert_eq!(a.supersteps, b.supersteps);
        }
    }

    /// Distinct seeds produce distinct fault and straggler schedules (over
    /// a 256-superstep × 8-executor window), while the same seed always
    /// reproduces its own schedule exactly.
    #[test]
    fn distinct_seeds_give_distinct_fault_schedules(seed in 0u64..u64::MAX) {
        let other = seed ^ 0x9E37_79B9_7F4A_7C15;
        let schedule = |s: &ScenarioConfig| -> Vec<bool> {
            (0..256u64)
                .flat_map(|step| (0..8u32).map(move |e| (step, e)))
                .map(|(step, e)| s.fails(step, e))
                .collect()
        };
        let slow = |s: &ScenarioConfig| -> Vec<bool> {
            (0..256u64)
                .flat_map(|step| (0..8u32).map(move |e| (step, e)))
                .map(|(step, e)| s.straggles(step, e))
                .collect()
        };
        let a = ScenarioConfig::faulty(seed);
        prop_assert_eq!(schedule(&a), schedule(&a), "same seed replays itself");
        prop_assert_ne!(
            schedule(&a),
            schedule(&ScenarioConfig::faulty(other)),
            "fault schedules must depend on the seed"
        );
        let s = ScenarioConfig::straggler(seed);
        prop_assert_eq!(slow(&s), slow(&s));
        prop_assert_ne!(
            slow(&s),
            slow(&ScenarioConfig::straggler(other)),
            "straggler schedules must depend on the seed"
        );
    }
}

/// Recovery correctness, exhaustively: inject an executor failure at
/// *every* superstep index of a short PageRank run (first and last
/// executor, with a 2-superstep checkpoint interval) and require the final
/// vertex states to be bit-identical to the failure-free run — recovery
/// may only ever add cost, never change the answer.
#[test]
fn failure_at_every_superstep_preserves_states() {
    let n = 48u64;
    let edges = (0..n)
        .flat_map(|v| [Edge::new(v, (v + 1) % n), Edge::new(v, (v * 7 + 3) % n)])
        .collect();
    let graph = Graph::new(n, edges);
    let pg = GraphXStrategy::RandomVertexCut.partition(&graph, 8);
    let cluster = ClusterConfig::paper_cluster();
    let opts = PregelConfig {
        executor: ExecutorMode::Sequential,
        max_iterations: 5,
        ..Default::default()
    };
    let clean = run_pregel(&PageRank, &pg, &cluster, &opts).unwrap();
    let supersteps = clean.sim.supersteps;
    assert!(supersteps >= 5, "short run still has supersteps to kill");
    for step in 0..supersteps {
        for exec in [0, cluster.executors - 1] {
            let scenario = ScenarioConfig {
                forced_failure: Some((step, exec)),
                checkpoint_interval: 2,
                ..Default::default()
            };
            let faulted = cluster.clone().with_scenario(scenario);
            let r = run_pregel(&PageRank, &pg, &faulted, &opts)
                .unwrap_or_else(|e| panic!("step {step} exec {exec}: {e}"));
            assert_eq!(
                r.states, clean.states,
                "step {step} exec {exec}: states must survive recovery"
            );
            assert_eq!(r.sim.executor_failures, 1, "step {step} exec {exec}");
            // Executor 0 always hosts resident partitions under this cut,
            // so its restore read alone guarantees a nonzero recovery bill
            // even when the failure lands on a checkpoint boundary (empty
            // replay window).
            if exec == 0 {
                assert!(
                    r.sim.recovery_seconds > 0.0,
                    "step {step} exec {exec}: recovery must be billed"
                );
            }
            assert!(
                r.sim.total_seconds > clean.sim.total_seconds,
                "step {step} exec {exec}: recovery + checkpoints only add cost"
            );
            assert_eq!(r.sim.messages, clean.sim.messages, "metered work unchanged");
            assert_eq!(r.sim.remote_bytes, clean.sim.remote_bytes);
        }
    }
}

/// A memory configuration where live data fits but live data plus the
/// recovery restore buffer does not: the replay is an `OutOfMemory` error
/// — never a panic — and the sim resets to a usable fresh state.
#[test]
fn recovery_oom_is_an_error_and_the_sim_stays_resettable() {
    let mut cfg = ClusterConfig::paper_cluster();
    cfg.executor_memory_gb = 1.0;
    cfg.usable_memory_fraction = 1.0;
    cfg.cost.memory_overhead_factor = 1.0;
    cfg.scenario.forced_failure = Some((0, 0));
    let mut sim = ClusterSim::new(cfg, 8);
    sim.set_resident(0, 700_000_000); // fits live; 2× during restore does not
    let err = sim.end_superstep().expect_err("restore buffer must OOM");
    let SimError::OutOfMemory { executor, .. } = err;
    assert_eq!(executor, 0);
    sim.reset();
    assert_eq!(sim.report(), &SimReport::default(), "reset is bit-fresh");
    sim.end_superstep()
        .expect("after reset no resident bytes remain, so the restore fits");
}

/// A scenario failure striking *during* `charge_repartition` (the cut-
/// switch shuffle a serving session bills) surfaces as an error too, and
/// the aborted sim can be reset and recharged.
#[test]
fn repartition_failure_is_an_error_and_recharges_after_reset() {
    let mut cfg = ClusterConfig::paper_cluster();
    cfg.executor_memory_gb = 1.0;
    cfg.usable_memory_fraction = 1.0;
    cfg.cost.memory_overhead_factor = 1.0;
    cfg.scenario.forced_failure = Some((0, 0));
    let mut sim = ClusterSim::new(cfg, 8);
    sim.set_resident(0, 700_000_000);
    let err = sim
        .charge_repartition(1_000_000)
        .expect_err("recovery inside the repartition superstep must OOM");
    let SimError::OutOfMemory { executor, .. } = err;
    assert_eq!(executor, 0);
    assert!(
        sim.report().recovery_seconds > 0.0,
        "the attempted recovery is still billed"
    );
    sim.reset();
    assert_eq!(sim.report(), &SimReport::default());
    let secs = sim
        .charge_repartition(1_000_000)
        .expect("with no resident snapshot the forced failure's restore fits");
    assert!(secs > 0.0);
    assert_eq!(
        sim.report().executor_failures,
        1,
        "the scenario fault still fires after reset — only *state* is scrubbed"
    );
}
