//! Property and integration tests for the out-of-core graph layer: the
//! text and binary container formats must roundtrip graphs bit-identically
//! (edges, multiplicity, isolated vertices), chunked [`GraphSource`]
//! partitioning must match the resident path for **every** partitioner at
//! every chunk size, and [`CompressedCsr`] must be neighbor-identical to
//! the flat [`Csr`] on every orientation.

use std::io::BufReader;

use cutfit::graph::io::{read_edge_list, write_edge_list};
use cutfit::graph::types::PartId;
use cutfit::graph::{binfmt, source, CompressedCsr, Csr, Neighbors};
use cutfit::partition::all_partitioners;
use cutfit::prelude::*;
use proptest::prelude::*;

/// Small random multigraphs with self-loops, duplicate edges, and trailing
/// isolated vertices (the id range deliberately exceeds the touched ids).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2u64..200, 0usize..600).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m).prop_map(move |pairs| {
            Graph::new(n, pairs.into_iter().map(|(s, d)| Edge::new(s, d)).collect())
        })
    })
}

fn text_roundtrip(graph: &Graph) -> Graph {
    let mut buf = Vec::new();
    write_edge_list(graph, &mut buf).expect("in-memory write");
    read_edge_list(BufReader::new(buf.as_slice())).expect("own output parses")
}

fn binary_roundtrip(graph: &Graph, block_edges: u32) -> Graph {
    let mut buf = Vec::new();
    binfmt::write_binary_with(graph, &mut buf, block_edges).expect("in-memory write");
    binfmt::read_binary(buf.as_slice()).expect("own output decodes")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn text_and_binary_roundtrips_are_bit_identical(
        graph in arb_graph(),
        block in (0usize..3).prop_map(|i| [1u32, 7, 1 << 16][i]),
    ) {
        // Bit-identical: same vertex count (isolated vertices included),
        // same edge vector (order and multiplicity preserved).
        prop_assert_eq!(&text_roundtrip(&graph), &graph);
        prop_assert_eq!(&binary_roundtrip(&graph, block), &graph);
        // And chained: text -> graph -> binary -> graph.
        prop_assert_eq!(&binary_roundtrip(&text_roundtrip(&graph), block), &graph);
    }

    #[test]
    fn chunked_assignment_matches_resident_for_every_partitioner(
        graph in arb_graph(),
        num_parts in 1u32..64,
        chunk in (0usize..4).prop_map(|i| [1usize, 13, 256, usize::MAX >> 1][i]),
    ) {
        for partitioner in all_partitioners() {
            let resident = partitioner.assign_edges(&graph, num_parts);
            let mut streamed: Vec<PartId> = Vec::new();
            let mut edges_seen = 0u64;
            let stats = partitioner
                .assign_source(&graph, num_parts, chunk, &mut |es, ps| {
                    assert_eq!(es.len(), ps.len());
                    edges_seen += es.len() as u64;
                    streamed.extend_from_slice(ps);
                })
                .expect("in-memory source cannot fail");
            prop_assert_eq!(&streamed, &resident, "{} chunk={}", partitioner.name(), chunk);
            prop_assert_eq!(stats.edges, graph.num_edges());
            prop_assert_eq!(edges_seen, graph.num_edges());
        }
    }

    #[test]
    fn compressed_csr_is_neighbor_identical_on_every_orientation(
        graph in arb_graph(),
    ) {
        for (csr, ccsr) in [
            (Csr::out_of(&graph), CompressedCsr::out_of(&graph)),
            (Csr::in_of(&graph), CompressedCsr::in_of(&graph)),
            (
                Csr::undirected_simple_of(&graph),
                CompressedCsr::undirected_simple_of(&graph),
            ),
        ] {
            prop_assert_eq!(csr.num_vertices(), ccsr.num_vertices());
            prop_assert_eq!(csr.num_entries(), ccsr.num_entries());
            for v in 0..graph.num_vertices() {
                prop_assert_eq!(csr.degree(v), ccsr.degree(v));
                let flat: Vec<VertexId> = csr.neighbors_iter(v).collect();
                let packed: Vec<VertexId> = ccsr.neighbors_iter(v).collect();
                prop_assert_eq!(flat, packed, "vertex {}", v);
            }
        }
    }
}

/// The full datagen catalogue (every profile family: social, crawl, road,
/// RMAT) roundtrips through both formats and the streaming sources,
/// preserving edges, multiplicity, and the isolated-vertex count.
#[test]
fn every_datagen_profile_roundtrips_through_every_path() {
    let dir = std::env::temp_dir().join(format!("cutfit-ooc-profiles-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for profile in cutfit::datagen::DatasetProfile::all() {
        let graph = profile.generate(0.0005, 42);
        assert_eq!(text_roundtrip(&graph), graph, "{}", profile.name);
        assert_eq!(binary_roundtrip(&graph, 4096), graph, "{}", profile.name);

        // File-backed sources materialize the same graph.
        let text_path = dir.join("g.txt");
        let bin_path = dir.join("g.cfb");
        let mut w = std::io::BufWriter::new(std::fs::File::create(&text_path).unwrap());
        write_edge_list(&graph, &mut w).unwrap();
        drop(w);
        binfmt::write_binary_file(&graph, &bin_path).unwrap();
        let text_src = cutfit::graph::TextFileSource::open(&text_path).unwrap();
        let bin_src = cutfit::graph::BinaryFileSource::open(&bin_path).unwrap();
        assert_eq!(
            source::materialize(&text_src).unwrap(),
            graph,
            "{}",
            profile.name
        );
        assert_eq!(
            source::materialize(&bin_src).unwrap(),
            graph,
            "{}",
            profile.name
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// A binary-backed streamed sweep is bit-identical to the resident sweep
/// while keeping only O(chunk) edge bytes resident.
#[test]
fn binary_backed_sweep_is_identical_and_bounded() {
    let graph = cutfit::datagen::DatasetProfile::youtube().generate(0.002, 11);
    let dir = std::env::temp_dir().join(format!("cutfit-ooc-sweep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("g.cfb");
    let chunk = 1 << 10;
    // Block size bounds the decode buffer; match it to the chunk so peak
    // residency is O(chunk) even on this test-sized graph.
    let w = std::fs::File::create(&path).unwrap();
    binfmt::write_binary_with(&graph, std::io::BufWriter::new(w), chunk as u32).unwrap();
    let source = cutfit::graph::BinaryFileSource::open(&path).unwrap();

    let strategies = GraphXStrategy::all();
    let resident = cutfit::partition::sweep_metrics(&graph, &strategies, 16, 1);
    let (streamed, stats) =
        cutfit::partition::sweep_metrics_source(&source, &strategies, 16, chunk, 1).unwrap();
    assert_eq!(streamed, resident);
    assert_eq!(stats.edges, graph.num_edges());
    let resident_bytes = graph.num_edges() * std::mem::size_of::<Edge>() as u64;
    assert!(
        stats.peak_resident_edge_bytes < resident_bytes,
        "streamed peak {} must undercut resident {}",
        stats.peak_resident_edge_bytes,
        resident_bytes
    );
    std::fs::remove_dir_all(&dir).ok();
}
