//! Property-based tests on partitioning invariants (proptest).

use cutfit::partition::all_partitioners;
use cutfit::prelude::*;
use proptest::prelude::*;

/// Strategy for small random multigraphs.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2u64..200, 0usize..600).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m).prop_map(move |pairs| {
            Graph::new(n, pairs.into_iter().map(|(s, d)| Edge::new(s, d)).collect())
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn assignments_cover_every_edge_and_stay_in_range(
        graph in arb_graph(),
        num_parts in 1u32..300,
    ) {
        for partitioner in all_partitioners() {
            let assignment = partitioner.assign_edges(&graph, num_parts);
            prop_assert_eq!(assignment.len() as u64, graph.num_edges());
            prop_assert!(
                assignment.iter().all(|&p| p < num_parts),
                "{} out of range", partitioner.name()
            );
        }
    }

    #[test]
    fn partitioned_graph_preserves_every_edge(
        graph in arb_graph(),
        num_parts in 1u32..64,
    ) {
        let pg = GraphXStrategy::RandomVertexCut.partition(&graph, num_parts);
        prop_assert_eq!(pg.num_edges(), graph.num_edges());
        // Multiset of edges is preserved.
        let mut original: Vec<Edge> = graph.edges().to_vec();
        let mut rebuilt: Vec<Edge> = pg
            .parts()
            .iter()
            .flat_map(|part| {
                part.edges
                    .iter()
                    .map(move |&(ls, ld)| Edge::new(part.global(ls), part.global(ld)))
            })
            .collect();
        original.sort_unstable();
        rebuilt.sort_unstable();
        prop_assert_eq!(original, rebuilt);
    }

    #[test]
    fn metric_identities_hold_for_all_partitioners(
        graph in arb_graph(),
        num_parts in 1u32..64,
    ) {
        for partitioner in all_partitioners() {
            let pg = partitioner.partition(&graph, num_parts);
            let m = PartitionMetrics::of(&pg);
            // The paper's §3.1 identity: replicas split two ways.
            prop_assert_eq!(m.comm_cost + m.non_cut, m.total_replicas);
            prop_assert_eq!(m.vertices_to_same + m.vertices_to_other, m.total_replicas);
            prop_assert_eq!(m.cut + m.non_cut, m.vertices_present);
            prop_assert_eq!(m.total_replicas, pg.routing().total_replicas());
            prop_assert!(m.balance >= 1.0 - 1e-12 || m.edges == 0);
            prop_assert!(m.replication_factor >= 1.0 - 1e-12 || m.vertices_present == 0);
            // Replication cannot exceed the partition count.
            prop_assert!(m.replication_factor <= num_parts as f64 + 1e-12);
            prop_assert_eq!(m.edges, graph.num_edges());
        }
    }

    #[test]
    fn two_d_replication_bound_holds(
        graph in arb_graph(),
        num_parts in 1u32..300,
    ) {
        let pg = GraphXStrategy::EdgePartition2D.partition(&graph, num_parts);
        let bound = 2 * (num_parts as f64).sqrt().ceil() as u32;
        for v in 0..graph.num_vertices() {
            prop_assert!(
                pg.routing().replication(v) <= bound,
                "vertex {} replicated {} times, bound {}",
                v, pg.routing().replication(v), bound
            );
        }
    }

    #[test]
    fn one_d_and_sc_collocate_out_edges(
        graph in arb_graph(),
        num_parts in 1u32..64,
    ) {
        // Every vertex's out-edges land in a single partition under 1D/SC.
        for strategy in [GraphXStrategy::EdgePartition1D, GraphXStrategy::SourceCut] {
            let assignment = strategy.assign_edges(&graph, num_parts);
            let mut seen: std::collections::HashMap<u64, u32> = Default::default();
            for (e, &p) in graph.edges().iter().zip(&assignment) {
                if let Some(&prev) = seen.get(&e.src) {
                    prop_assert_eq!(prev, p, "{} split vertex {}", strategy, e.src);
                } else {
                    seen.insert(e.src, p);
                }
            }
        }
    }

    #[test]
    fn crvc_collocates_both_directions(
        graph in arb_graph(),
        num_parts in 1u32..64,
    ) {
        let strategy = GraphXStrategy::CanonicalRandomVertexCut;
        for e in graph.edges() {
            prop_assert_eq!(
                strategy.partition_edge(e.src, e.dst, num_parts),
                strategy.partition_edge(e.dst, e.src, num_parts)
            );
        }
    }

    #[test]
    fn masters_are_always_replicas(
        graph in arb_graph(),
        num_parts in 1u32..64,
    ) {
        let pg = GraphXStrategy::DestinationCut.partition(&graph, num_parts);
        for v in 0..graph.num_vertices() {
            match pg.master_of(v) {
                Some(m) => prop_assert!(pg.routing().parts_of(v).contains(&m)),
                None => prop_assert_eq!(pg.routing().replication(v), 0),
            }
        }
    }

    #[test]
    fn assignment_metrics_match_built_metrics(
        graph in arb_graph(),
        num_parts in 1u32..200,
    ) {
        // Build-free streaming metrics must equal the built-graph metrics
        // field for field, for every partitioner family — including counts
        // above 64 (the sorted-set replica path) and below (the bitmask
        // path).
        for partitioner in all_partitioners() {
            let assignment = partitioner.assign_edges(&graph, num_parts);
            let streamed = PartitionMetrics::of_assignment(&graph, &assignment, num_parts);
            let built = PartitionMetrics::of(
                &PartitionedGraph::build(&graph, &assignment, num_parts),
            );
            prop_assert_eq!(&streamed, &built, "{}", partitioner.name());
        }
    }

    #[test]
    fn threaded_assignment_is_bit_identical(
        graph in arb_graph(),
        num_parts in 1u32..64,
    ) {
        // Every strategy must produce the same assignment at every thread
        // count (streaming strategies fall back to sequential; the hash
        // family parallelises over chunked edge ranges).
        for partitioner in all_partitioners() {
            let sequential = partitioner.assign_edges(&graph, num_parts);
            for threads in [1usize, 2, 4, 0] {
                prop_assert_eq!(
                    &partitioner.assign_edges_threaded(&graph, num_parts, threads),
                    &sequential,
                    "{} at {} threads", partitioner.name(), threads
                );
            }
        }
    }

    #[test]
    fn exact_ceil_sqrt_agrees_with_f64_on_part_id_range(n in 1u64..(u32::MAX as u64 + 1)) {
        // 2D's grid side: the exact integer path must satisfy the defining
        // inequality everywhere, and over the valid PartId range the old
        // f64 round-trip happens to agree — pinning that the replacement
        // changed no assignment.
        let s = cutfit::util::num::ceil_sqrt(n);
        prop_assert!(s * s >= n && (s - 1) * (s - 1) < n);
        prop_assert_eq!(s, (n as f64).sqrt().ceil() as u64);
    }

    #[test]
    fn single_partition_degenerates_cleanly(graph in arb_graph()) {
        for partitioner in all_partitioners() {
            let pg = partitioner.partition(&graph, 1);
            let m = PartitionMetrics::of(&pg);
            prop_assert_eq!(m.cut, 0, "{}", partitioner.name());
            prop_assert_eq!(m.comm_cost, 0);
            prop_assert!((m.balance - 1.0).abs() < 1e-12 || m.edges == 0);
            prop_assert_eq!(m.part_stdev, 0.0);
        }
    }
}
