//! Session determinism: serving a job from the workspace cache must be
//! bit-identical — vertex states *and* metered `SimReport` — to running it
//! fresh and uncached, across executor modes and partitioners. The cache
//! may only make dispatch cheaper, never change what a job computes or
//! what it is billed.

use cutfit::algorithms::PageRank;
use cutfit::prelude::*;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2u64..100, 0usize..300).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m).prop_map(move |pairs| {
            Graph::new(n, pairs.into_iter().map(|(s, d)| Edge::new(s, d)).collect())
        })
    })
}

fn arb_strategy() -> impl Strategy<Value = GraphXStrategy> {
    proptest::sample::select(vec![
        GraphXStrategy::RandomVertexCut,
        GraphXStrategy::EdgePartition2D,
        GraphXStrategy::DestinationCut,
        GraphXStrategy::CanonicalRandomVertexCut,
        GraphXStrategy::SourceCut,
    ])
}

fn arb_mode() -> impl Strategy<Value = ExecutorMode> {
    proptest::sample::select(vec![
        ExecutorMode::Sequential,
        ExecutorMode::Parallel { threads: 4 },
        ExecutorMode::Auto,
    ])
}

fn cluster() -> ClusterConfig {
    ClusterConfig::paper_cluster()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Workspace-cached dispatch (miss, then hit) equals a fresh
    /// `Algorithm::run` in `SimReport`, metrics, and supersteps — for a
    /// fixed-size-state Pregel program (PR), a convergent one (CC), and
    /// the non-Pregel dataflow (TR, canonical orientation).
    #[test]
    fn cached_jobs_bill_identically_to_fresh_runs(
        graph in arb_graph(),
        strategy in arb_strategy(),
        mode in arb_mode(),
        num_parts in 1u32..24,
    ) {
        let mut ws = Workspace::new(graph.clone(), cluster(), mode);
        for algo in [
            Algorithm::PageRank { iterations: 4 },
            Algorithm::ConnectedComponents { max_iterations: 6 },
            Algorithm::Triangles,
        ] {
            let fresh = algo.run(&graph, &strategy, num_parts, &cluster(), mode).unwrap();
            let miss = ws.run_job_isolated(&algo, strategy, num_parts);
            let hit = ws.run_job_isolated(&algo, strategy, num_parts);
            prop_assert!(hit.cache_hit, "{}", algo.abbrev());
            for job in [&miss, &hit] {
                prop_assert_eq!(
                    job.result.as_ref().unwrap(), &fresh.sim,
                    "{}: cached bill must equal fresh bill", algo.abbrev()
                );
                prop_assert_eq!(&job.metrics, &fresh.metrics);
                prop_assert_eq!(job.supersteps, fresh.supersteps);
            }
        }
    }

    /// Vertex states through a reused `PreparedRun` over the workspace's
    /// memoized materialization equal a fresh uncached `run_pregel` —
    /// repeatedly, so buffer reuse across dispatches is provably inert.
    #[test]
    fn cached_states_equal_fresh_states(
        graph in arb_graph(),
        strategy in arb_strategy(),
        mode in arb_mode(),
        num_parts in 1u32..24,
    ) {
        let mut ws = Workspace::new(graph, cluster(), mode);
        let pg = ws.materialized(strategy, num_parts);
        let opts = PregelConfig {
            executor: mode,
            max_iterations: 4,
            ..Default::default()
        };
        let fresh = run_pregel(&PageRank, &pg, &cluster(), &opts).unwrap();
        let mut prepared = PreparedRun::new(pg.clone(), &cluster(), mode);
        for round in 0..2 {
            let r = prepared.run(&PageRank, &opts).unwrap();
            prop_assert_eq!(&r.states, &fresh.states, "round {}", round);
            prop_assert_eq!(&r.sim, &fresh.sim, "round {}", round);
        }
    }

    /// Serving-mode dispatch is deterministic: two workspaces fed the same
    /// workload produce identical per-job bills and identical session
    /// charges, and within one workspace a repeat of the active cut's job
    /// re-bills exactly the same simulated time.
    #[test]
    fn serving_dispatch_is_deterministic(
        graph in arb_graph(),
        strategy in arb_strategy(),
        mode in arb_mode(),
        num_parts in 1u32..24,
    ) {
        let jobs = [
            Job::fixed(Algorithm::PageRank { iterations: 3 }, strategy, num_parts),
            Job::fixed(
                Algorithm::ConnectedComponents { max_iterations: 5 },
                strategy,
                num_parts,
            ),
            Job::fixed(Algorithm::PageRank { iterations: 3 }, strategy, num_parts),
        ];
        let mut a = Workspace::new(graph.clone(), cluster(), mode);
        let mut b = Workspace::new(graph, cluster(), mode);
        let ra = a.run_workload(&jobs);
        let rb = b.run_workload(&jobs);
        prop_assert_eq!(ra.jobs.len(), rb.jobs.len());
        for (x, y) in ra.jobs.iter().zip(&rb.jobs) {
            prop_assert_eq!(x.result.as_ref().unwrap(), y.result.as_ref().unwrap());
            prop_assert_eq!(x.provisioning_seconds, y.provisioning_seconds);
            prop_assert_eq!(x.cache_hit, y.cache_hit);
        }
        prop_assert_eq!(a.session_report(), b.session_report());
        // Jobs 0 and 2 are the same job on the same (active) cut: the
        // repeat is a provisioning-free cache hit with an identical bill.
        prop_assert!(ra.jobs[2].cache_hit);
        prop_assert_eq!(ra.jobs[2].provisioning_seconds, 0.0);
        prop_assert_eq!(
            ra.jobs[2].result.as_ref().unwrap(),
            ra.jobs[0].result.as_ref().unwrap()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `ClusterSim::reset` scrubs *all* scenario state — pending fault
    /// draws, drifted clocks, the checkpoint ledger and replay window — so
    /// a reset sim bills bit-identically to a freshly constructed one,
    /// including after a mid-recovery `SimError` abort.
    #[test]
    fn reset_scrubs_scenario_state_bit_identically(
        seed in 0u64..u64::MAX,
        drift_mils in 0u64..30,
        fail_pct in 0u64..40,
        ckpt in 0u64..4,
    ) {
        let scenario = ScenarioConfig {
            seed,
            heterogeneity: 0.5,
            clock_drift: drift_mils as f64 / 1000.0,
            failure_prob: fail_pct as f64 / 100.0,
            checkpoint_interval: ckpt,
            ..Default::default()
        };
        let cfg = cluster().with_scenario(scenario);
        // A fixed serving-shaped charge pattern: resident state, remote
        // traffic, edge scans, six supersteps.
        let charge = |sim: &mut ClusterSim| -> Result<f64, SimError> {
            let mut total = 0.0;
            for p in 0..8u32 {
                sim.set_resident(p, 2_000_000 + u64::from(p) * 100_000);
            }
            for _ in 0..6 {
                sim.ledger().send_exec(0, 1, 10, 50_000);
                sim.ledger().send_exec(2, 3, 4, 20_000);
                sim.ledger().edge_scans(0, 1_000);
                total += sim.end_superstep()?;
            }
            Ok(total)
        };
        let mut fresh = ClusterSim::new(cfg.clone(), 8);
        let expected = charge(&mut fresh).unwrap();
        let expected_report = fresh.report().clone();

        let mut reused = ClusterSim::new(cfg.clone(), 8);
        charge(&mut reused).unwrap();
        reused.reset();
        prop_assert_eq!(reused.report(), &SimReport::default());
        let replay = charge(&mut reused).unwrap();
        prop_assert_eq!(replay, expected, "reset sim must re-bill exactly");
        prop_assert_eq!(reused.report(), &expected_report);

        // Mid-recovery abort: a forced failure whose restore buffer blows
        // the heap aborts with `SimError`, and reset still yields a sim
        // bit-identical to fresh under the same (tight) config.
        let mut tight = cfg;
        tight.executor_memory_gb = 1.0;
        tight.usable_memory_fraction = 1.0;
        tight.cost.memory_overhead_factor = 1.0;
        tight.scenario.forced_failure = Some((0, 0));
        let mut aborted = ClusterSim::new(tight.clone(), 8);
        aborted.set_resident(0, 700_000_000);
        prop_assert!(
            aborted.end_superstep().is_err(),
            "restore must overflow the tight heap"
        );
        aborted.reset();
        prop_assert_eq!(aborted.report(), &SimReport::default());
        let mut fresh_tight = ClusterSim::new(tight, 8);
        let a = charge(&mut aborted).unwrap();
        let b = charge(&mut fresh_tight).unwrap();
        prop_assert_eq!(a, b, "post-abort reset must re-bill like fresh");
        prop_assert_eq!(aborted.report(), fresh_tight.report());
    }
}

/// The experiment grid through the workspace must reproduce the cell-by-
/// cell observations of standalone `Algorithm::run` calls (the pre-session
/// one-shot harness), including across executor modes.
#[test]
fn experiment_grid_equals_standalone_runs() {
    let config = ExperimentConfig {
        scale: 0.002,
        seed: 42,
        num_parts: vec![8, 16],
        datasets: vec![DatasetProfile::youtube()],
        partitioners: vec![
            GraphXStrategy::RandomVertexCut,
            GraphXStrategy::EdgePartition2D,
            GraphXStrategy::DestinationCut,
        ],
        cluster: ClusterConfig::paper_cluster(),
        executor: ExecutorMode::Sequential,
        scale_memory: false,
    };
    for algo in [Algorithm::PageRank { iterations: 3 }, Algorithm::Triangles] {
        let result = run_experiment(&algo, &config);
        let graph = DatasetProfile::youtube().generate(config.scale, config.seed);
        for obs in &result.observations {
            let strategy = GraphXStrategy::all()
                .into_iter()
                .find(|s| s.abbrev() == obs.partitioner)
                .unwrap();
            let fresh = algo
                .run(
                    &graph,
                    &strategy,
                    obs.num_parts,
                    &config.cluster,
                    config.executor,
                )
                .unwrap();
            assert_eq!(
                obs.time_s,
                Some(fresh.sim.total_seconds),
                "{}",
                obs.partitioner
            );
            assert_eq!(obs.metrics, fresh.metrics);
            assert_eq!(obs.supersteps, fresh.supersteps);
        }
    }
}
