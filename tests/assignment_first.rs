//! The assignment-first pipeline on realistic workloads: parity between the
//! build-free streaming metrics and the built-graph metrics, bit-identical
//! parallel assignment, and the fused sweep, on RMAT plus the paper's
//! dataset profiles (the property tests in `partition_properties.rs` cover
//! the same invariants on adversarial random multigraphs).

use cutfit::partition::{all_partitioners, assign_all, sweep_metrics};
use cutfit::prelude::*;

const SCALE: f64 = 0.002;

fn workloads() -> Vec<(String, Graph)> {
    let mut graphs = vec![(
        "rmat-10".to_string(),
        cutfit::datagen::rmat(
            &cutfit::datagen::RmatConfig {
                scale: 10,
                edges: 8 * 1024,
                ..Default::default()
            },
            42,
        ),
    )];
    for profile in [
        DatasetProfile::youtube(),
        DatasetProfile::pocek(),
        DatasetProfile::road_net_pa(),
    ] {
        graphs.push((profile.name.to_string(), profile.generate(SCALE, 42)));
    }
    graphs
}

#[test]
fn parallel_assignment_is_bit_identical_on_real_workloads() {
    for (name, graph) in workloads() {
        for partitioner in all_partitioners() {
            let sequential = partitioner.assign_edges(&graph, 64);
            for threads in [1usize, 2, 4] {
                assert_eq!(
                    partitioner.assign_edges_threaded(&graph, 64, threads),
                    sequential,
                    "{} on {name} at {threads} threads",
                    partitioner.name()
                );
            }
        }
    }
}

#[test]
fn streaming_metrics_match_built_metrics_on_real_workloads() {
    // All six GraphX strategies plus the streaming baselines, at partition
    // counts on both sides of the 64-bit replica-bitmask boundary.
    for (name, graph) in workloads() {
        for partitioner in all_partitioners() {
            for num_parts in [2u32, 16, 64, 129] {
                let assignment = partitioner.assign_edges(&graph, num_parts);
                let streamed = PartitionMetrics::of_assignment(&graph, &assignment, num_parts);
                let built =
                    PartitionMetrics::of(&PartitionedGraph::build(&graph, &assignment, num_parts));
                assert_eq!(
                    streamed,
                    built,
                    "{} on {name} at {num_parts} parts",
                    partitioner.name()
                );
            }
        }
    }
}

#[test]
fn fused_sweep_matches_independent_assignment() {
    let strategies = GraphXStrategy::all();
    for (name, graph) in workloads() {
        for threads in [1usize, 4] {
            let fused = assign_all(&graph, &strategies, 64, threads);
            let metrics = sweep_metrics(&graph, &strategies, 64, threads);
            for (k, strategy) in strategies.iter().enumerate() {
                assert_eq!(
                    fused[k],
                    strategy.assign_edges(&graph, 64),
                    "{strategy} on {name}"
                );
                assert_eq!(
                    metrics[k],
                    PartitionMetrics::of_assignment(&graph, &fused[k], 64),
                    "{strategy} on {name}"
                );
            }
        }
    }
}
