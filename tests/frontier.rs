//! Frontier-driven execution equivalence grid.
//!
//! The engine promises that scan mode is *unobservable* except in wall
//! clock: for every program, `Sparse` and `Auto` produce bit-identical
//! vertex states AND a bit-identical metered [`SimReport`] compared to
//! `Dense` — across every executor mode. This file pins that promise on
//! the full {algorithm} × {scan mode} × {executor} grid, plus sanity
//! checks on the frontier telemetry the sparse path exposes.

use cutfit::algorithms::{label_propagation, Sssp};
use cutfit::engine::PregelResult;
use cutfit::prelude::*;

fn scan_modes() -> [ScanMode; 3] {
    [ScanMode::Dense, ScanMode::Sparse, ScanMode::Auto]
}

fn executors() -> [ExecutorMode; 4] {
    [
        ExecutorMode::Sequential,
        ExecutorMode::Parallel { threads: 2 },
        ExecutorMode::Parallel { threads: 4 },
        ExecutorMode::Auto,
    ]
}

fn opts(scan_mode: ScanMode, executor: ExecutorMode) -> PregelConfig {
    PregelConfig {
        scan_mode,
        executor,
        ..Default::default()
    }
}

/// Runs one algorithm over the whole scan-mode × executor grid and asserts
/// every cell is bit-identical to the Dense/Sequential baseline in states,
/// metered report, and superstep count.
fn assert_grid_identical<S, F>(name: &str, run: F)
where
    S: PartialEq + std::fmt::Debug,
    F: Fn(&PregelConfig) -> PregelResult<S>,
{
    let baseline = run(&opts(ScanMode::Dense, ExecutorMode::Sequential));
    for scan_mode in scan_modes() {
        for executor in executors() {
            let r = run(&opts(scan_mode, executor));
            assert_eq!(
                baseline.states, r.states,
                "{name}: states drifted under {scan_mode:?}/{executor:?}"
            );
            assert_eq!(
                baseline.sim, r.sim,
                "{name}: SimReport drifted under {scan_mode:?}/{executor:?}"
            );
            assert_eq!(
                baseline.supersteps, r.supersteps,
                "{name}: superstep count drifted under {scan_mode:?}/{executor:?}"
            );
        }
    }
}

#[test]
fn pagerank_is_bit_identical_across_the_grid() {
    let g = DatasetProfile::youtube().generate(0.002, 42);
    let pg = GraphXStrategy::CanonicalRandomVertexCut.partition(&g, 16);
    let cluster = ClusterConfig::paper_cluster();
    assert_grid_identical("PR", |o| {
        pagerank(&pg, &cluster, 8, o).expect("fits in memory")
    });
}

#[test]
fn sssp_is_bit_identical_across_the_grid() {
    let g = DatasetProfile::youtube().generate(0.002, 42);
    let pg = GraphXStrategy::EdgePartition2D.partition(&g, 16);
    let cluster = ClusterConfig::paper_cluster();
    let landmarks = Sssp::pick_landmarks(g.num_vertices(), 3, 7);
    assert_grid_identical("SSSP", |o| {
        sssp(&pg, &cluster, landmarks.clone(), 10_000, o).expect("fits in memory")
    });
}

#[test]
fn connected_components_is_bit_identical_across_the_grid() {
    let g = DatasetProfile::road_net_pa().generate(0.002, 42);
    let pg = GraphXStrategy::EdgePartition1D.partition(&g, 16);
    let cluster = ClusterConfig::paper_cluster();
    assert_grid_identical("CC", |o| {
        connected_components(&pg, &cluster, 10_000, o).expect("fits in memory")
    });
}

#[test]
fn label_propagation_is_bit_identical_across_the_grid() {
    let g = DatasetProfile::pocek().generate(0.002, 42);
    let pg = GraphXStrategy::RandomVertexCut.partition(&g, 16);
    let cluster = ClusterConfig::paper_cluster();
    assert_grid_identical("LP", |o| {
        label_propagation(&pg, &cluster, 6, o).expect("fits in memory")
    });
}

#[test]
fn frontier_profile_reports_the_converging_tail() {
    let g = DatasetProfile::road_net_pa().generate(0.002, 42);
    let pg = GraphXStrategy::EdgePartition2D.partition(&g, 16);
    let cluster = ClusterConfig::paper_cluster();
    let landmarks = Sssp::pick_landmarks(g.num_vertices(), 1, 7);
    let r =
        sssp(&pg, &cluster, landmarks, 10_000, &PregelConfig::default()).expect("fits in memory");
    let p = r.sim.frontier_profile();

    // One telemetry sample per message superstep (including the final empty
    // one that proves convergence), none for setup.
    assert_eq!(p.supersteps, r.supersteps + 1);
    // Superstep one is all-active by protocol.
    assert_eq!(p.peak_active_fraction, 1.0);
    // A single-landmark BFS on a sparse road network activates a shrinking
    // wavefront: the mean must sit strictly between "nothing" and "dense".
    assert!(p.mean_active_fraction > 0.0 && p.mean_active_fraction < 1.0);
    assert!(p.mean_scanned_fraction > 0.0 && p.mean_scanned_fraction <= 1.0);
    assert!(p.low_active_supersteps <= p.supersteps);

    // The profile is derived from mode-invariant integers, so it is itself
    // identical across scan modes.
    for scan_mode in scan_modes() {
        let r2 = sssp(
            &pg,
            &cluster,
            Sssp::pick_landmarks(g.num_vertices(), 1, 7),
            10_000,
            &opts(scan_mode, ExecutorMode::Sequential),
        )
        .expect("fits in memory");
        assert_eq!(p, r2.sim.frontier_profile(), "{scan_mode:?}");
    }
}

mod properties {
    use super::*;
    use cutfit::algorithms::connected_components;
    use proptest::prelude::*;

    fn arb_graph() -> impl Strategy<Value = Graph> {
        (2u64..120, 0usize..400).prop_flat_map(|(n, m)| {
            proptest::collection::vec((0..n, 0..n), m).prop_map(move |pairs| {
                Graph::new(n, pairs.into_iter().map(|(s, d)| Edge::new(s, d)).collect())
            })
        })
    }

    fn arb_strategy() -> impl Strategy<Value = GraphXStrategy> {
        proptest::sample::select(GraphXStrategy::all().to_vec())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// SSSP is the adversarial case for sparse scans — converging,
        /// variable-size state (exercising incremental residency deltas),
        /// and `ToSrc`-only messages — so it anchors the random-graph
        /// equivalence property, with forced-`Sparse` pinning the sparse
        /// machinery even where `Auto` would choose dense.
        #[test]
        fn sssp_scan_modes_agree_on_arbitrary_graphs(
            graph in arb_graph(),
            strategy in arb_strategy(),
            num_parts in 1u32..32,
            seed in 0u64..1000,
        ) {
            let landmarks = Sssp::pick_landmarks(graph.num_vertices(), 2, seed);
            let pg = strategy.partition(&graph, num_parts);
            let cluster = ClusterConfig::paper_cluster();
            let dense = sssp(
                &pg, &cluster, landmarks.clone(), 100_000,
                &opts(ScanMode::Dense, ExecutorMode::Sequential),
            ).expect("fits");
            for scan_mode in [ScanMode::Sparse, ScanMode::Auto] {
                for executor in [ExecutorMode::Sequential, ExecutorMode::Parallel { threads: 3 }] {
                    let r = sssp(
                        &pg, &cluster, landmarks.clone(), 100_000,
                        &opts(scan_mode, executor),
                    ).expect("fits");
                    prop_assert_eq!(&dense.states, &r.states);
                    prop_assert_eq!(&dense.sim, &r.sim);
                    prop_assert_eq!(dense.supersteps, r.supersteps);
                }
            }
        }

        /// CC activates in `Either` direction (the union-gather path).
        #[test]
        fn cc_scan_modes_agree_on_arbitrary_graphs(
            graph in arb_graph(),
            strategy in arb_strategy(),
            num_parts in 1u32..32,
        ) {
            let pg = strategy.partition(&graph, num_parts);
            let cluster = ClusterConfig::paper_cluster();
            let dense = connected_components(
                &pg, &cluster, 100_000,
                &opts(ScanMode::Dense, ExecutorMode::Sequential),
            ).expect("fits");
            for scan_mode in [ScanMode::Sparse, ScanMode::Auto] {
                let r = connected_components(
                    &pg, &cluster, 100_000,
                    &opts(scan_mode, ExecutorMode::Parallel { threads: 2 }),
                ).expect("fits");
                prop_assert!(r.converged);
                prop_assert_eq!(&dense.states, &r.states);
                prop_assert_eq!(&dense.sim, &r.sim);
            }
        }
    }
}

#[test]
fn always_active_programs_report_a_full_frontier() {
    let g = DatasetProfile::youtube().generate(0.002, 42);
    let pg = GraphXStrategy::RandomVertexCut.partition(&g, 8);
    let cluster = ClusterConfig::paper_cluster();
    let r = pagerank(&pg, &cluster, 5, &PregelConfig::default()).expect("fits in memory");
    let p = r.sim.frontier_profile();
    assert_eq!(p.supersteps, r.supersteps);
    assert_eq!(p.peak_active_fraction, 1.0);
    assert_eq!(p.mean_active_fraction, 1.0);
    assert_eq!(p.mean_scanned_fraction, 1.0);
    assert_eq!(p.low_active_supersteps, 0);
}
