//! Property-based tests on engine/algorithm correctness: the distributed
//! execution must compute exactly what the sequential references compute,
//! for arbitrary graphs and partitionings.

use cutfit::prelude::*;
use cutfit_algorithms::{reference_components, reference_sssp, sssp, Sssp};
use cutfit_graph::analysis::count_triangles;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (2u64..120, 0usize..400).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m).prop_map(move |pairs| {
            Graph::new(n, pairs.into_iter().map(|(s, d)| Edge::new(s, d)).collect())
        })
    })
}

fn arb_strategy() -> impl Strategy<Value = GraphXStrategy> {
    proptest::sample::select(GraphXStrategy::all().to_vec())
}

fn cluster() -> ClusterConfig {
    ClusterConfig::paper_cluster()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cc_equals_union_find(
        graph in arb_graph(),
        strategy in arb_strategy(),
        num_parts in 1u32..32,
    ) {
        let pg = strategy.partition(&graph, num_parts);
        let r = cutfit::algorithms::connected_components(
            &pg, &cluster(), 100_000, &Default::default(),
        ).expect("fits");
        prop_assert!(r.converged);
        prop_assert_eq!(r.states, reference_components(&graph));
    }

    #[test]
    fn triangles_equal_oracle(
        graph in arb_graph(),
        strategy in arb_strategy(),
        num_parts in 1u32..32,
    ) {
        let r = triangle_count(&graph, &strategy, num_parts, &cluster()).expect("fits");
        prop_assert_eq!(r.total, count_triangles(&graph));
        let sum: u64 = r.per_vertex.iter().sum();
        prop_assert_eq!(sum, 3 * r.total);
    }

    #[test]
    fn sssp_equals_reverse_bfs(
        graph in arb_graph(),
        strategy in arb_strategy(),
        num_parts in 1u32..32,
        seed in 0u64..1000,
    ) {
        let landmarks = Sssp::pick_landmarks(graph.num_vertices(), 2, seed);
        let pg = strategy.partition(&graph, num_parts);
        let r = sssp(&pg, &cluster(), landmarks.clone(), 100_000, &Default::default())
            .expect("fits");
        prop_assert!(r.converged);
        prop_assert_eq!(r.states, reference_sssp(&graph, &landmarks));
    }

    #[test]
    fn pagerank_mass_is_conserved_without_dangling_or_sourceless_vertices(
        n in 3u64..60,
        seed in 0u64..1000,
    ) {
        // A cycle plus random chords: every vertex has in- and out-edges,
        // so total rank mass converges to exactly n (standard PR identity).
        let mut edges: Vec<Edge> = (0..n).map(|v| Edge::new(v, (v + 1) % n)).collect();
        let mut rng = cutfit::util::Xoshiro256pp::seed_from_u64(seed);
        for _ in 0..n {
            let a = rng.range_u64(n);
            let b = rng.range_u64(n);
            if a != b {
                edges.push(Edge::new(a, b));
            }
        }
        let graph = Graph::new(n, edges);
        let pg = GraphXStrategy::RandomVertexCut.partition(&graph, 8);
        let r = cutfit::algorithms::pagerank(&pg, &cluster(), 60, &Default::default())
            .expect("fits");
        let total: f64 = r.states.iter().sum();
        prop_assert!(
            (total - n as f64).abs() < 1e-6 * n as f64,
            "rank mass {} vs vertices {}", total, n
        );
    }

    #[test]
    fn sim_time_is_positive_and_finite(
        graph in arb_graph(),
        strategy in arb_strategy(),
    ) {
        let pg = strategy.partition(&graph, 8);
        let r = cutfit::algorithms::pagerank(&pg, &cluster(), 3, &Default::default())
            .expect("fits");
        prop_assert!(r.sim.total_seconds.is_finite());
        prop_assert!(r.sim.total_seconds > 0.0);
        prop_assert!(r.sim.compute_seconds >= 0.0);
        prop_assert!(r.sim.network_seconds >= 0.0);
        let parts_sum = r.sim.compute_seconds
            + r.sim.network_seconds
            + r.sim.storage_seconds
            + r.sim.overhead_seconds;
        prop_assert!(
            (parts_sum - r.sim.total_seconds).abs() < 1e-9 * r.sim.total_seconds.max(1.0),
            "breakdown {} vs total {}", parts_sum, r.sim.total_seconds
        );
    }

    #[test]
    fn more_partitions_never_lose_edges(
        graph in arb_graph(),
        np_small in 1u32..8,
        np_large in 8u32..128,
    ) {
        for np in [np_small, np_large] {
            let pg = GraphXStrategy::EdgePartition2D.partition(&graph, np);
            prop_assert_eq!(pg.num_edges(), graph.num_edges());
        }
    }
}
