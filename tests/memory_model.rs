//! Memory-model behaviour: the paper's SSSP out-of-memory on road networks
//! must reproduce under scaled executor memory, while the social datasets
//! and the other algorithms complete; and the infrastructure presets must
//! order as reported (config ii > iii > iv in runtime).

use cutfit::prelude::*;
use cutfit_algorithms::{sssp, Sssp};

const SCALE: f64 = 0.004;

/// Road-network tests use a larger scale: the OOM reproduction needs the
/// grid diameter (∝ √V) to exceed the ~120-superstep lineage budget with a
/// comfortable margin, which 0.8 % of the real size guarantees.
const ROAD_SCALE: f64 = 0.008;

fn scaled_cluster() -> ClusterConfig {
    ClusterConfig::paper_cluster().with_memory_scale(SCALE)
}

#[test]
fn sssp_on_road_networks_runs_out_of_memory() {
    for profile in [
        DatasetProfile::road_net_pa(),
        DatasetProfile::road_net_tx(),
        DatasetProfile::road_net_ca(),
    ] {
        let graph = profile.generate(ROAD_SCALE, 42);
        let landmarks = Sssp::pick_landmarks(graph.num_vertices(), 5, 1);
        let pg = GraphXStrategy::EdgePartition2D.partition(&graph, 128);
        let result = sssp(
            &pg,
            &ClusterConfig::paper_cluster().with_memory_scale(ROAD_SCALE),
            landmarks,
            10_000,
            &Default::default(),
        );
        match result {
            Err(SimError::OutOfMemory { superstep, .. }) => {
                assert!(
                    superstep > 50,
                    "{}: OOM is a lineage effect, not an instant one (step {superstep})",
                    profile.name
                );
            }
            Ok(r) => panic!(
                "{}: expected OOM, converged in {} supersteps",
                profile.name, r.supersteps
            ),
        }
    }
}

#[test]
fn sssp_on_social_graphs_completes_under_the_same_budget() {
    for profile in DatasetProfile::social() {
        let graph = profile.generate(SCALE, 42);
        let landmarks = Sssp::pick_landmarks(graph.num_vertices(), 5, 1);
        let pg = GraphXStrategy::EdgePartition2D.partition(&graph, 128);
        let r = sssp(
            &pg,
            &scaled_cluster(),
            landmarks,
            10_000,
            &Default::default(),
        )
        .unwrap_or_else(|e| panic!("{}: {e}", profile.name));
        assert!(r.converged, "{}", profile.name);
        assert!(
            r.supersteps < 60,
            "{}: social graphs converge quickly ({} steps)",
            profile.name,
            r.supersteps
        );
    }
}

#[test]
fn pagerank_completes_on_road_networks_under_the_same_budget() {
    // 10 fixed iterations never trip the lineage limit.
    let graph = DatasetProfile::road_net_ca().generate(SCALE, 42);
    let pg = GraphXStrategy::EdgePartition2D.partition(&graph, 128);
    let r = cutfit::algorithms::pagerank(&pg, &scaled_cluster(), 10, &Default::default())
        .expect("PR is bounded-iteration");
    assert_eq!(r.supersteps, 10);
}

#[test]
fn infrastructure_presets_order_runtimes_as_in_the_paper() {
    let graph = DatasetProfile::follow_dec().generate(0.003, 42);
    let pg = GraphXStrategy::EdgePartition2D.partition(&graph, 256);
    let mut times = Vec::new();
    for config in [
        ClusterConfig::config_ii(),
        ClusterConfig::config_iii(),
        ClusterConfig::config_iv(),
    ] {
        let r = cutfit::algorithms::pagerank(&pg, &config, 10, &Default::default())
            .expect("full-size memory");
        times.push((config.name.clone(), r.sim.total_seconds));
    }
    assert!(times[0].1 > times[1].1, "40Gbps must beat 1Gbps: {times:?}");
    assert!(times[1].1 > times[2].1, "SSD must beat HDD: {times:?}");
    // The paper reports roughly 15% and 20% total improvements.
    let iii_gain = (times[0].1 - times[1].1) / times[0].1;
    let iv_gain = (times[0].1 - times[2].1) / times[0].1;
    assert!(
        (0.02..0.9).contains(&iii_gain),
        "network upgrade gain {iii_gain}"
    );
    assert!(iv_gain > iii_gain, "storage upgrade adds on top");
}

#[test]
fn oom_error_messages_are_informative() {
    let graph = DatasetProfile::road_net_pa().generate(ROAD_SCALE, 42);
    let landmarks = Sssp::pick_landmarks(graph.num_vertices(), 5, 1);
    let pg = GraphXStrategy::RandomVertexCut.partition(&graph, 128);
    let err = sssp(
        &pg,
        &ClusterConfig::paper_cluster().with_memory_scale(ROAD_SCALE),
        landmarks,
        10_000,
        &Default::default(),
    )
    .expect_err("road networks OOM");
    let msg = err.to_string();
    assert!(msg.contains("out of memory"), "{msg}");
    assert!(msg.contains("GB"), "{msg}");
}
