//! Determinism guarantees: identical seeds produce identical graphs,
//! partitionings, results, *and* simulated bills — across repeated runs and
//! across sequential/parallel execution.

use cutfit::prelude::*;

#[test]
fn generation_is_bit_identical_across_calls() {
    for profile in DatasetProfile::all() {
        let a = profile.generate(0.002, 99);
        let b = profile.generate(0.002, 99);
        assert_eq!(a, b, "{}", profile.name);
    }
}

#[test]
fn different_seeds_give_different_graphs() {
    for profile in DatasetProfile::all() {
        let a = profile.generate(0.002, 1);
        let b = profile.generate(0.002, 2);
        assert_ne!(a, b, "{}", profile.name);
    }
}

#[test]
fn simulated_bill_is_reproducible() {
    let graph = DatasetProfile::soc_live_journal().generate(0.001, 7);
    let pg = GraphXStrategy::EdgePartition2D.partition(&graph, 32);
    let cluster = ClusterConfig::paper_cluster();
    let a = cutfit::algorithms::pagerank(&pg, &cluster, 10, &Default::default()).unwrap();
    let b = cutfit::algorithms::pagerank(&pg, &cluster, 10, &Default::default()).unwrap();
    assert_eq!(a.sim, b.sim);
    assert_eq!(a.states, b.states);
}

#[test]
fn parallel_executor_is_bit_identical_for_every_algorithm() {
    let graph = DatasetProfile::pocek().generate(0.002, 3);
    let cluster = ClusterConfig::paper_cluster();
    for algo in Algorithm::paper_suite(17) {
        let seq = algo
            .run(
                &graph,
                &GraphXStrategy::CanonicalRandomVertexCut,
                32,
                &cluster,
                ExecutorMode::Sequential,
            )
            .expect("fits");
        let par = algo
            .run(
                &graph,
                &GraphXStrategy::CanonicalRandomVertexCut,
                32,
                &cluster,
                ExecutorMode::Parallel { threads: 8 },
            )
            .expect("fits");
        assert_eq!(
            seq.sim,
            par.sim,
            "{}: parallel scan must not change the metered bill",
            algo.abbrev()
        );
        assert_eq!(seq.supersteps, par.supersteps, "{}", algo.abbrev());
    }
}

#[test]
fn assignment_does_not_depend_on_edge_order_for_hash_strategies() {
    // Hash strategies are pure per-edge functions: permuting the edge list
    // permutes the assignment identically.
    let graph = DatasetProfile::youtube().generate(0.002, 21);
    let mut reversed_edges = graph.edges().to_vec();
    reversed_edges.reverse();
    let reversed = Graph::new(graph.num_vertices(), reversed_edges);
    for strategy in GraphXStrategy::all() {
        let mut a = strategy.assign_edges(&graph, 64);
        let mut b = strategy.assign_edges(&reversed, 64);
        b.reverse();
        a.iter_mut().for_each(|_| {});
        assert_eq!(a, b, "{strategy}");
    }
}

#[test]
fn landmark_selection_is_stable() {
    use cutfit_algorithms::Sssp;
    assert_eq!(
        Sssp::pick_landmarks(100_000, 5, 42),
        Sssp::pick_landmarks(100_000, 5, 42)
    );
    assert_ne!(
        Sssp::pick_landmarks(100_000, 5, 42),
        Sssp::pick_landmarks(100_000, 5, 43)
    );
}
