//! Adversarial shard-interleaving tests: the engine's parallel phases must
//! produce bit-identical results no matter in which order the worker shards
//! complete.
//!
//! [`cutfit::util::exec::with_shard_permutation`] replays every pool
//! fan-out as a sequential run of the same shards in a seeded adversarial
//! order (fresh Fisher–Yates draw per fan-out, identical shard boundaries
//! and shard↔scratch-state pairing). Because disjoint-write phases make any
//! completion-order interleaving equivalent to *some* shard order, driving
//! whole algorithm runs through many random orders is a loom-style schedule
//! exploration at the granularity where our executor can actually race —
//! and debug builds additionally assert shard disjointness via the
//! `DisjointSlice` owner tracking.

use cutfit::prelude::*;
use cutfit::util::exec::with_shard_permutation;

fn graph_and_cut() -> (ClusterConfig, PartitionedGraph) {
    let graph = DatasetProfile::youtube().generate(0.002, 42);
    let pg = GraphXStrategy::EdgePartition2D.partition(&graph, 16);
    (ClusterConfig::paper_cluster(), pg)
}

fn opts(threads: usize) -> PregelConfig {
    PregelConfig {
        executor: ExecutorMode::Parallel { threads },
        ..Default::default()
    }
}

#[test]
fn pagerank_is_bit_identical_under_adversarial_shard_orders() {
    let (cluster, pg) = graph_and_cut();
    for threads in [1usize, 2, 4] {
        let baseline = pagerank(&pg, &cluster, 5, &opts(threads)).expect("baseline run");
        for seed in 0..5u64 {
            let permuted = with_shard_permutation(seed, || {
                pagerank(&pg, &cluster, 5, &opts(threads)).expect("permuted run")
            });
            // Bit-identical: float states compared exactly, accounting and
            // convergence included.
            assert_eq!(
                permuted.states, baseline.states,
                "threads={threads} seed={seed}"
            );
            assert_eq!(permuted.supersteps, baseline.supersteps);
            assert_eq!(permuted.converged, baseline.converged);
            assert_eq!(permuted.sim, baseline.sim, "threads={threads} seed={seed}");
        }
    }
}

#[test]
fn connected_components_is_bit_identical_under_adversarial_shard_orders() {
    let (cluster, pg) = graph_and_cut();
    for threads in [2usize, 4] {
        let baseline = connected_components(&pg, &cluster, 20, &opts(threads)).expect("baseline");
        for seed in [7u64, 1_000_003] {
            let permuted = with_shard_permutation(seed, || {
                connected_components(&pg, &cluster, 20, &opts(threads)).expect("permuted")
            });
            assert_eq!(permuted.states, baseline.states, "threads={threads}");
            assert_eq!(permuted.sim, baseline.sim);
        }
    }
}

#[test]
fn sssp_is_bit_identical_under_adversarial_shard_orders() {
    let (cluster, pg) = graph_and_cut();
    let landmarks = vec![0, 5, 17];
    let baseline = sssp(&pg, &cluster, landmarks.clone(), 30, &opts(4)).expect("baseline");
    for seed in 0..3u64 {
        let permuted = with_shard_permutation(seed, || {
            sssp(&pg, &cluster, landmarks.clone(), 30, &opts(4)).expect("permuted")
        });
        assert_eq!(permuted.states, baseline.states, "seed={seed}");
        assert_eq!(permuted.supersteps, baseline.supersteps);
        assert_eq!(permuted.sim, baseline.sim);
    }
}

#[test]
fn permutation_also_agrees_with_sequential_mode() {
    // Transitivity check pinning all three schedules to one another:
    // sequential, parallel, and permuted-parallel.
    let (cluster, pg) = graph_and_cut();
    let sequential = pagerank(
        &pg,
        &cluster,
        5,
        &PregelConfig {
            executor: ExecutorMode::Sequential,
            ..Default::default()
        },
    )
    .expect("sequential");
    let permuted = with_shard_permutation(99, || {
        pagerank(&pg, &cluster, 5, &opts(3)).expect("permuted")
    });
    assert_eq!(permuted.states, sequential.states);
    assert_eq!(permuted.sim, sequential.sim);
}
