//! Bit-identity and failure-path tests for the parallel container decode
//! pipeline: `BinaryFileSource` with `decode_threads`/`read_ahead` must
//! produce the **same chunk sequence and the same `StreamStats`** as the
//! sequential path at every thread count × block size × chunk size, drive
//! streaming partitioners to identical assignments, and surface a corrupt
//! block from a worker thread as a typed `ParseError` with the correct
//! absolute byte offset — no panic, no deadlock.

use cutfit::graph::io::ParseError;
use cutfit::graph::source::{materialize, GraphSource, StreamStats};
use cutfit::graph::types::PartId;
use cutfit::graph::{binfmt, BinaryFileSource};
use cutfit::partition::all_partitioners;
use cutfit::prelude::*;
use proptest::prelude::*;

/// Small random multigraphs with self-loops, duplicate edges, and trailing
/// isolated vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (2u64..150, 0usize..500).prop_flat_map(|(n, m)| {
        proptest::collection::vec((0..n, 0..n), m).prop_map(move |pairs| {
            Graph::new(n, pairs.into_iter().map(|(s, d)| Edge::new(s, d)).collect())
        })
    })
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("cutfit-par-ingest-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_container(graph: &Graph, path: &std::path::Path, block_edges: u32) {
    let w = std::io::BufWriter::new(std::fs::File::create(path).unwrap());
    binfmt::write_binary_with(graph, w, block_edges).unwrap();
}

fn collect_chunks(src: &dyn GraphSource, chunk: usize) -> (Vec<Vec<Edge>>, StreamStats) {
    let mut out = Vec::new();
    let stats = src
        .for_each_chunk(chunk, &mut |c| out.push(c.to_vec()))
        .expect("healthy container streams cleanly");
    (out, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance grid: thread counts {1, 2, 4} × block sizes
    /// {3, 64, default} × chunk sizes {1, 7, 64 Ki}. Chunk sequences are
    /// bit-identical to the sequential path everywhere; `StreamStats` is a
    /// pure function of (data, chunk, read_ahead) — identical across
    /// thread counts, and equal to the sequential stats at window 1.
    #[test]
    fn parallel_decode_grid_is_bit_identical(graph in arb_graph()) {
        let dir = scratch_dir("grid");
        let path = dir.join("g.cfb");
        for block in [3u32, 64, binfmt::DEFAULT_BLOCK_EDGES] {
            write_container(&graph, &path, block);
            let base = BinaryFileSource::open(&path).unwrap();
            for chunk in [1usize, 7, 1 << 16] {
                let (seq_chunks, seq_stats) = collect_chunks(&base, chunk);
                let mut wide: Option<StreamStats> = None;
                for threads in [1usize, 2, 4] {
                    // Window 1: pipelined stats must equal sequential
                    // stats exactly (residency peak included).
                    let (c, s) = collect_chunks(
                        &base.clone().with_decode_threads(threads),
                        chunk,
                    );
                    if threads > 1 {
                        prop_assert_eq!(&c, &seq_chunks);
                        prop_assert_eq!(s, seq_stats);
                    }
                    // Window 4: same chunks, stats invariant across
                    // thread counts.
                    let (c, s) = collect_chunks(
                        &base.clone().with_decode_threads(threads).with_read_ahead(4),
                        chunk,
                    );
                    prop_assert_eq!(&c, &seq_chunks, "block={} chunk={} threads={}", block, chunk, threads);
                    match wide {
                        None => wide = Some(s),
                        Some(first) => prop_assert_eq!(
                            s, first,
                            "stats vary with thread count at block={} chunk={}", block, chunk
                        ),
                    }
                }
                // Peak residency is bounded by the declared window, never
                // O(E): window × block beside the chunk buffer.
                let declared = (4 * block as u64).min(graph.num_edges());
                let bound = (chunk as u64 + declared) * std::mem::size_of::<Edge>() as u64;
                let peak = wide.unwrap().peak_resident_edge_bytes;
                prop_assert!(
                    peak <= bound,
                    "peak {} exceeds window bound {} at block={} chunk={}",
                    peak, bound, block, chunk
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Streaming partitioners consuming the pipelined source produce the
    /// same assignments as the resident path — decode parallelism is
    /// invisible downstream.
    #[test]
    fn partitioner_assignments_survive_parallel_decode(
        graph in arb_graph(),
        num_parts in 1u32..32,
    ) {
        let dir = scratch_dir("assign");
        let path = dir.join("g.cfb");
        write_container(&graph, &path, 64);
        let source = BinaryFileSource::open(&path)
            .unwrap()
            .with_decode_threads(4)
            .with_read_ahead(4);
        for partitioner in all_partitioners() {
            let resident = partitioner.assign_edges(&graph, num_parts);
            let mut streamed: Vec<PartId> = Vec::new();
            partitioner
                .assign_source(&source, num_parts, 128, &mut |_, ps| {
                    streamed.extend_from_slice(ps);
                })
                .expect("healthy container assigns cleanly");
            prop_assert_eq!(&streamed, &resident, "{}", partitioner.name());
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Byte offsets of every block frame in a container file, via the raw
/// (no-decode) reader.
fn block_frames(bytes: &[u8]) -> Vec<binfmt::RawBlock> {
    let mut reader = binfmt::RawBlockReader::new(bytes).unwrap();
    let mut frames = Vec::new();
    while let Some(b) = reader.next_block().unwrap() {
        frames.push(b);
    }
    frames
}

/// A corrupt checksum in a *middle* block must propagate out of a decode
/// worker as `ParseError::ChecksumMismatch` with the correct absolute byte
/// offset, after delivering exactly the blocks that precede it — no panic,
/// no deadlock, no partial garbage.
#[test]
fn corrupt_middle_block_error_escapes_the_worker_with_its_offset() {
    let graph = Graph::new_unchecked(
        50,
        (0..200u64)
            .map(|i| Edge::new(i % 50, (i * 7) % 50))
            .collect::<Vec<_>>(),
    );
    let mut bytes = Vec::new();
    binfmt::write_binary_with(&graph, &mut bytes, 16).unwrap();
    let frames = block_frames(&bytes);
    assert!(frames.len() > 4, "need a genuine middle block");
    let victim = &frames[frames.len() / 2];
    // Flip one payload byte; the stored checksum sits right after the
    // payload, at frame offset + 8-byte frame header + payload length.
    let payload_at = victim.offset as usize + 8;
    bytes[payload_at] ^= 0xff;
    let checksum_at = victim.offset + 8 + victim.payload.len() as u64;

    let dir = scratch_dir("corrupt");
    let path = dir.join("bad.cfb");
    std::fs::write(&path, &bytes).unwrap();
    let source = BinaryFileSource::open(&path)
        .unwrap()
        .with_decode_threads(4)
        .with_read_ahead(4);

    let mut delivered: Vec<Edge> = Vec::new();
    let err = source
        .for_each_chunk(13, &mut |c| delivered.extend_from_slice(c))
        .expect_err("corrupt block must fail the pass");
    match err {
        ParseError::ChecksumMismatch {
            offset,
            stored,
            computed,
        } => {
            assert_eq!(offset, checksum_at, "offset must be the stored checksum's");
            assert_ne!(stored, computed);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    // In-order delivery: everything the sink saw is a prefix of the edge
    // list strictly before the corrupt block.
    let healthy_prefix = (frames.len() / 2) * 16;
    assert!(delivered.len() <= healthy_prefix);
    assert_eq!(delivered.as_slice(), &graph.edges()[..delivered.len()]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite 1 negative tests through the source layer: a truncated last
/// block and an extra trailing block both fail the pipelined pass with a
/// typed error instead of silently succeeding.
#[test]
fn truncated_and_trailing_containers_fail_typed_through_the_pipeline() {
    let graph = Graph::new_unchecked(
        20,
        (0..60u64)
            .map(|i| Edge::new(i % 20, (i * 3) % 20))
            .collect::<Vec<_>>(),
    );
    let mut bytes = Vec::new();
    binfmt::write_binary_with(&graph, &mut bytes, 8).unwrap();
    let frames = block_frames(&bytes);
    let dir = scratch_dir("negative");

    // Truncated last block: chop into the final frame's checksum.
    let truncated = &bytes[..bytes.len() - 4];
    let path = dir.join("trunc.cfb");
    std::fs::write(&path, truncated).unwrap();
    let source = BinaryFileSource::open(&path)
        .unwrap()
        .with_decode_threads(2)
        .with_read_ahead(2);
    let err = source
        .for_each_chunk(7, &mut |_| {})
        .expect_err("truncated container must fail");
    assert!(
        matches!(err, ParseError::Truncated { .. }),
        "expected Truncated, got {err:?}"
    );

    // Extra trailing block: append a copy of the last frame, so the block
    // edge_count sum exceeds the header's num_edges.
    let last = frames.last().unwrap();
    let mut extra = bytes.clone();
    extra.extend_from_slice(&bytes[last.offset as usize..]);
    let path = dir.join("extra.cfb");
    std::fs::write(&path, &extra).unwrap();
    let source = BinaryFileSource::open(&path)
        .unwrap()
        .with_decode_threads(2)
        .with_read_ahead(2);
    let err = source
        .for_each_chunk(7, &mut |_| {})
        .expect_err("trailing block must fail");
    assert!(
        matches!(err, ParseError::Corrupt { .. }),
        "expected Corrupt, got {err:?}"
    );

    // The healthy file still materializes bit-identically through the
    // pipelined configuration.
    let path = dir.join("ok.cfb");
    std::fs::write(&path, &bytes).unwrap();
    let source = BinaryFileSource::open(&path)
        .unwrap()
        .with_decode_threads(4)
        .with_read_ahead(8);
    assert_eq!(materialize(&source).unwrap(), graph);
    std::fs::remove_dir_all(&dir).ok();
}
