//! Smoke tests mirroring each of the seven `examples/*.rs` flows on tiny
//! graphs, so `cargo test` exercises every documented entry point without
//! paying the examples' full default scales. CI additionally builds the
//! example binaries themselves and runs `quickstart` end to end.

use cutfit::prelude::*;

/// `examples/quickstart.rs`: generate, partition, measure, run PageRank,
/// read the bill.
#[test]
fn quickstart_flow() {
    let graph = DatasetProfile::youtube().generate(0.001, 42);
    assert!(graph.num_vertices() > 0);
    assert!(graph.num_edges() > 0);

    let partitioned = GraphXStrategy::EdgePartition2D.partition(&graph, 16);
    let metrics = PartitionMetrics::of(&partitioned);
    assert_eq!(metrics.edges, graph.num_edges());
    assert!(metrics.balance >= 1.0);

    let cluster = ClusterConfig::paper_cluster();
    let result = pagerank(&partitioned, &cluster, 10, &Default::default()).expect("fits");
    assert_eq!(result.states.len(), graph.num_vertices() as usize);
    assert!(result.states.iter().all(|r| r.is_finite() && *r > 0.0));
    assert!(result.sim.total_seconds > 0.0);
}

/// `examples/tailored_pipeline.rs`: heuristic and measured advisor
/// recommendations, then a run under the recommended partitioning.
#[test]
fn tailored_pipeline_flow() {
    let graph = DatasetProfile::pocek().generate(0.002, 7);
    let advisor = Advisor::scaled(0.002);

    let heuristic = advisor.recommend(AlgorithmClass::EdgeBound, &graph, 16);
    assert!(!heuristic.rationale.is_empty());

    let measured = advisor.recommend_measured(AlgorithmClass::EdgeBound, &graph, 16, &[]);
    assert_eq!(measured.ranking.len(), GraphXStrategy::all().len());

    let pg = heuristic.strategy.partition(&graph, 16);
    let r = pagerank(&pg, &ClusterConfig::paper_cluster(), 5, &Default::default()).expect("fits");
    assert_eq!(r.states.len(), graph.num_vertices() as usize);
}

/// `examples/custom_algorithm.rs`: a user-written [`VertexProgram`] driven
/// through [`run_pregel`]. This one sums neighbour ids to each destination —
/// small enough to verify against a sequential oracle.
#[test]
fn custom_algorithm_flow() {
    struct NeighbourIdSum;

    impl VertexProgram for NeighbourIdSum {
        type State = u64;
        type Msg = u64;

        fn name(&self) -> &'static str {
            "neighbour-id-sum"
        }

        fn initial_state(&self, _v: VertexId, _ctx: &cutfit::engine::InitCtx<'_>) -> u64 {
            0
        }

        fn initial_msg(&self) -> u64 {
            0
        }

        fn apply(&self, _v: VertexId, state: &u64, msg: &u64) -> u64 {
            state + msg
        }

        fn send(&self, t: &Triplet<'_, u64>) -> Messages<u64> {
            Messages::ToDst(t.src + 1)
        }

        fn merge(&self, a: u64, b: u64) -> u64 {
            a + b
        }
    }

    let graph = Graph::new(
        5,
        vec![
            Edge::new(0, 1),
            Edge::new(2, 1),
            Edge::new(3, 4),
            Edge::new(4, 3),
        ],
    );
    let pg = GraphXStrategy::RandomVertexCut.partition(&graph, 4);
    let r = run_pregel(
        &NeighbourIdSum,
        &pg,
        &ClusterConfig::paper_cluster(),
        &PregelConfig {
            max_iterations: 1,
            ..Default::default()
        },
    )
    .expect("fits");
    // After one superstep each vertex holds the sum of (src + 1) over its
    // in-edges: vertex 1 gets (0+1) + (2+1), vertices 3 and 4 get each other.
    assert_eq!(r.states, vec![0, 4, 0, 5, 4]);
}

/// `examples/partitioner_comparison.rs`: all six strategies measured and run
/// on one dataset.
#[test]
fn partitioner_comparison_flow() {
    let graph = DatasetProfile::youtube().generate(0.001, 11);
    let cluster = ClusterConfig::paper_cluster();
    for strategy in GraphXStrategy::all() {
        let pg = strategy.partition(&graph, 8);
        let metrics = PartitionMetrics::of(&pg);
        assert_eq!(metrics.edges, graph.num_edges(), "{strategy}");
        let r = pagerank(&pg, &cluster, 3, &Default::default()).expect("fits");
        assert!(r.sim.total_seconds > 0.0, "{strategy}");
    }
}

/// `examples/out_of_core.rs`: convert to the binary container, stream a
/// sweep over it with bounded edge memory, then serve jobs from a
/// binary-backed workspace billed by bytes on disk.
#[test]
fn out_of_core_flow() {
    use cutfit::graph::{binfmt, BinaryFileSource, GraphSource};

    let graph = DatasetProfile::pocek().generate(0.001, 42);
    let dir = std::env::temp_dir().join(format!("cutfit-ooc-smoke-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("graph.cfb");
    let bin_bytes = binfmt::write_binary_file(&graph, &path).expect("write container");
    assert!(bin_bytes < graph.num_edges() * std::mem::size_of::<Edge>() as u64);

    let source = BinaryFileSource::open(&path).expect("container opens");
    assert_eq!(source.num_edges(), graph.num_edges());
    let strategies = GraphXStrategy::all();
    let (streamed, stats) =
        cutfit::partition::sweep_metrics_source(&source, &strategies, 16, 1 << 12, 0)
            .expect("container streams");
    assert_eq!(stats.edges, graph.num_edges());
    assert_eq!(
        streamed,
        cutfit::partition::sweep_metrics(&graph, &strategies, 16, 1),
        "streamed sweep matches the resident sweep"
    );

    let mut ws = Workspace::from_binary_file(
        &path,
        ClusterConfig::paper_cluster(),
        ExecutorMode::Sequential,
    )
    .expect("container loads");
    assert_eq!(ws.graph().as_ref(), &graph, "lossless load");
    assert_eq!(ws.load_source_bytes(), bin_bytes);
    let report = ws.run_workload(&[Job::fixed(
        Algorithm::PageRank { iterations: 3 },
        GraphXStrategy::EdgePartition2D,
        16,
    )]);
    assert_eq!(report.failures(), 0);
    assert!(report.provisioning_seconds() > 0.0);
    std::fs::remove_dir_all(&dir).ok();
}

/// `examples/converging_frontier.rs`: SSSP from hub landmarks traced via
/// `frontier_trace`, then the dense-vs-auto race on a road network — states
/// and simulated bills bit-identical, only the wall clock moves.
#[test]
fn converging_frontier_flow() {
    let cluster = ClusterConfig::paper_cluster();
    let run = |pg: &PartitionedGraph, landmarks: Vec<VertexId>, scan_mode| {
        let opts = PregelConfig {
            executor: ExecutorMode::Sequential,
            scan_mode,
            checkpoint_interval: Some(25),
            ..Default::default()
        };
        sssp(pg, &cluster, landmarks, 100_000, &opts).expect("fits")
    };

    // Part one: hub-landmark SSSP on a scale-free graph, frontier traced.
    let config = cutfit::datagen::RmatConfig {
        scale: 9,
        edges: 1 << 10,
        ..Default::default()
    };
    let graph = cutfit::datagen::rmat(&config, 42);
    let hub = graph
        .in_degrees()
        .iter()
        .enumerate()
        .max_by_key(|&(v, &d)| (d, std::cmp::Reverse(v)))
        .map(|(v, _)| v as VertexId)
        .expect("non-empty graph");
    let pg = GraphXStrategy::EdgePartition2D.partition(&graph, 16);
    let dense = run(&pg, vec![hub], ScanMode::Dense);
    let auto = run(&pg, vec![hub], ScanMode::Auto);
    assert_eq!(dense.states, auto.states);
    assert_eq!(dense.sim, auto.sim);
    assert!(auto.supersteps > 1, "hub landmark must actually propagate");
    // One trace sample per message superstep, wavefront collapsing to zero.
    assert_eq!(auto.sim.frontier_trace.len() as u64, auto.supersteps + 1);
    let first = auto.sim.frontier_trace.first().expect("non-empty trace");
    let last = auto.sim.frontier_trace.last().expect("non-empty trace");
    assert_eq!(first.active_vertices, graph.num_vertices());
    assert!(last.active_vertices < first.active_vertices);

    // Part two: the road-network race, where the tail is the whole run.
    let road = DatasetProfile::road_net_pa().generate(0.0005, 42);
    let road_pg = GraphXStrategy::EdgePartition2D.partition(&road, 16);
    let dense = run(&road_pg, vec![0], ScanMode::Dense);
    let auto = run(&road_pg, vec![0], ScanMode::Auto);
    assert_eq!(dense.states, auto.states);
    assert_eq!(dense.sim, auto.sim);
    let profile = auto.sim.frontier_profile();
    assert!(
        profile.low_active_supersteps > profile.supersteps / 2,
        "a road-network wavefront should spend most supersteps below 1% active \
         ({} of {})",
        profile.low_active_supersteps,
        profile.supersteps
    );
}

/// `examples/oom_postmortem.rs`: long-lineage SSSP on a road network dies of
/// simulated memory exhaustion; checkpointing fixes it; a bounded-iteration
/// job under the same budget is fine.
#[test]
fn oom_postmortem_flow() {
    let scale = 0.006;
    let graph = DatasetProfile::road_net_ca().generate(scale, 42);
    let cluster = ClusterConfig::paper_cluster().with_memory_scale(scale);
    let pg = GraphXStrategy::EdgePartition2D.partition(&graph, 32);
    let landmarks = cutfit::algorithms::Sssp::pick_landmarks(graph.num_vertices(), 5, 7);

    match sssp(
        &pg,
        &cluster,
        landmarks.clone(),
        10_000,
        &Default::default(),
    ) {
        Err(SimError::OutOfMemory {
            required_gb,
            capacity_gb,
            ..
        }) => {
            assert!(required_gb > capacity_gb);
        }
        Ok(r) => panic!(
            "expected the paper's OOM, converged in {} supersteps",
            r.supersteps
        ),
    }

    let mut checkpointed = cluster.clone();
    checkpointed.cost.lineage_heap_fraction_per_superstep = 0.0;
    checkpointed.cost.lineage_retention = 0.0;
    let r = sssp(&pg, &checkpointed, landmarks, 10_000, &Default::default())
        .expect("checkpointing truncates the lineage");
    assert!(r.converged);

    let pr = pagerank(&pg, &cluster, 10, &Default::default())
        .expect("bounded iteration count stays within budget");
    assert_eq!(pr.supersteps, 10);
}
