//! # cutfit — tailoring the graph partitioning to the computation
//!
//! A Rust reproduction of *"Cut to Fit: Tailoring the Partitioning to the
//! Computation"* (Kolokasis & Pratikakis). This umbrella crate re-exports the
//! full public API of [`cutfit_core`]; see the README for a tour and the
//! `examples/` directory for runnable entry points.
//!
//! ```
//! use cutfit::prelude::*;
//!
//! // Generate a small social graph, partition it six ways, and ask the
//! // advisor which cut fits PageRank best.
//! let graph = DatasetProfile::youtube().generate(0.002, 42);
//! let strategy = Advisor::default()
//!     .recommend(AlgorithmClass::EdgeBound, &graph, 16)
//!     .strategy;
//! let partitioned = strategy.partition(&graph, 16);
//! assert_eq!(partitioned.num_parts(), 16);
//! ```

pub use cutfit_core::*;
