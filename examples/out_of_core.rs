//! Out-of-core tour: convert a graph to the binary container, stream a
//! partitioning sweep over it without materializing the edge list, then
//! serve jobs from a binary-backed workspace whose one-time load is billed
//! from bytes on disk.
//!
//! ```text
//! cargo run --release --example out_of_core
//! ```

use cutfit::graph::{binfmt, io, BinaryFileSource, GraphSource};
use cutfit::prelude::*;

fn main() {
    // 1. A Pocek-shaped social graph, then both on-disk formats side by
    //    side: the text edge list and the delta+varint binary container.
    let graph = DatasetProfile::pocek().generate(0.01, 42);
    let dir = std::env::temp_dir().join(format!("cutfit-out-of-core-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let text_path = dir.join("graph.txt");
    let bin_path = dir.join("graph.cfb");
    let mut w = std::io::BufWriter::new(std::fs::File::create(&text_path).expect("create"));
    io::write_edge_list(&graph, &mut w).expect("write text");
    drop(w);
    let bin_bytes = binfmt::write_binary_file(&graph, &bin_path).expect("write container");
    let text_bytes = std::fs::metadata(&text_path).expect("meta").len();
    let edges = graph.num_edges();
    println!(
        "{} vertices / {edges} edges: text {text_bytes} B ({:.2} B/edge), \
         binary {bin_bytes} B ({:.2} B/edge)",
        graph.num_vertices(),
        text_bytes as f64 / edges as f64,
        bin_bytes as f64 / edges as f64,
    );

    // 2. Stream the §3.1 metrics sweep for all six strategies straight off
    //    the container: the edge list is never resident — peak edge memory
    //    is O(chunk), and the metrics are bit-identical to the resident
    //    path.
    let source = BinaryFileSource::open(&bin_path).expect("container opens");
    let strategies = GraphXStrategy::all();
    let (metrics, stats) =
        cutfit::partition::sweep_metrics_source(&source, &strategies, 16, 1 << 14, 0)
            .expect("container streams");
    println!(
        "streamed sweep over {} edges in {} chunks, peak resident edge bytes {} \
         (vs {} fully resident)",
        stats.edges,
        stats.chunks,
        stats.peak_resident_edge_bytes,
        source.num_edges() * std::mem::size_of::<Edge>() as u64,
    );
    let (best, m) = strategies
        .iter()
        .zip(&metrics)
        .min_by(|a, b| a.1.comm_cost.cmp(&b.1.comm_cost))
        .expect("six candidates");
    println!(
        "lowest comm-cost candidate: {best} (comm cost {})",
        m.comm_cost
    );

    // 3. Serve jobs from a binary-backed workspace: the session's one-time
    //    load bills the container's bytes on disk, not the in-memory model.
    let mut ws = Workspace::from_binary_file(
        &bin_path,
        ClusterConfig::paper_cluster(),
        ExecutorMode::Auto,
    )
    .expect("container loads");
    println!(
        "workspace load billed from {} bytes on disk",
        ws.load_source_bytes()
    );
    let report = ws.run_workload(&[
        Job::fixed(Algorithm::PageRank { iterations: 5 }, *best, 16),
        Job::advised(Algorithm::ConnectedComponents { max_iterations: 10 }),
    ]);
    println!("{}", report.render());
    println!(
        "end to end: {:.3}s ({:.3}s provisioning, {} cut switches)",
        report.total_seconds(),
        report.provisioning_seconds(),
        report.cut_switches()
    );
    std::fs::remove_dir_all(&dir).ok();
}
