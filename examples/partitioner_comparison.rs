//! Compare all six partitioning strategies of the paper on one dataset:
//! the five characterization metrics side by side with the simulated
//! PageRank runtime each partitioning produces.
//!
//! ```text
//! cargo run --release --example partitioner_comparison [dataset] [scale]
//! ```

use cutfit::prelude::*;
use cutfit::util::fmt::{human_seconds, thousands};
use cutfit::util::table::{Align, AsciiTable};

fn main() {
    let mut args = std::env::args().skip(1);
    let dataset = args.next().unwrap_or_else(|| "Pocek".to_string());
    let scale: f64 = args
        .next()
        .map(|s| s.parse().expect("scale must be a float"))
        .unwrap_or(0.005);
    let profile = DatasetProfile::by_name(&dataset).unwrap_or_else(|| {
        eprintln!("unknown dataset {dataset}; try one of:");
        for p in DatasetProfile::all() {
            eprintln!("  {}", p.name);
        }
        std::process::exit(2);
    });

    let graph = profile.generate(scale, 42);
    let cluster = ClusterConfig::paper_cluster();
    let num_parts = 128;
    println!(
        "{}: {} vertices, {} edges, {num_parts} partitions\n",
        profile.name,
        thousands(graph.num_vertices()),
        thousands(graph.num_edges())
    );

    let mut table = AsciiTable::new([
        "strategy",
        "Balance",
        "NonCut",
        "Cut",
        "CommCost",
        "PartStDev",
        "PR time",
    ])
    .aligns(&[
        Align::Left,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
        Align::Right,
    ]);
    let mut best: Option<(GraphXStrategy, f64)> = None;
    for strategy in GraphXStrategy::all() {
        let pg = strategy.partition(&graph, num_parts);
        let m = PartitionMetrics::of(&pg);
        let pr = cutfit::algorithms::pagerank(&pg, &cluster, 10, &Default::default())
            .expect("fits in memory");
        let t = pr.sim.total_seconds;
        if best.is_none_or(|(_, bt)| t < bt) {
            best = Some((strategy, t));
        }
        table.row([
            strategy.abbrev().to_string(),
            format!("{:.2}", m.balance),
            thousands(m.non_cut),
            thousands(m.cut),
            thousands(m.comm_cost),
            format!("{:.1}", m.part_stdev),
            human_seconds(t),
        ]);
    }
    println!("{}", table.render());
    let (winner, time) = best.expect("six strategies ran");
    println!(
        "fastest for PageRank here: {winner} at {} — compare its CommCost column:\n\
         the paper's point is exactly that this metric predicts the winner.",
        human_seconds(time)
    );
}
