//! Frontier collapse on a converging algorithm, traced superstep by
//! superstep — and what the frontier-driven engine does about it.
//!
//! Part one runs single-source shortest paths from the graph's biggest
//! hubs on an RMAT graph, then prints the active-vertex and scanned-edge
//! fraction of every superstep from [`SimReport::frontier_trace`]: after a
//! few wavefront supersteps the frontier collapses to a sliver, and a
//! dense engine keeps paying O(V + E) per superstep for it. Scale-free
//! graphs have tiny diameters, though, so the collapse is quick and the
//! tail is short — the dense and sparse wall clocks land close together.
//!
//! Part two is the paper's own SSSP-hostile shape: a road network, whose
//! huge diameter makes SSSP run for *hundreds* of supersteps with a thin
//! wavefront — almost the whole run is tail. That is where frontier-driven
//! execution changes the game, and the dense-vs-auto wall clocks show it.
//!
//! In both parts the states and the simulated bill are bit-identical by
//! construction; scan mode only moves the wall clock.
//!
//! ```text
//! cargo run --release --example converging_frontier [rmat_scale] [edge_factor] [road_scale]
//! ```

use std::time::Instant;

use cutfit::engine::PregelResult;
use cutfit::prelude::*;

type SsspResult = PregelResult<Vec<u32>>;

/// Times one SSSP run per scan mode, asserting states and bills match.
/// Returns the auto-mode result plus the (dense, auto) wall clocks.
fn race(
    pg: &PartitionedGraph,
    cluster: &ClusterConfig,
    landmarks: &[VertexId],
) -> (SsspResult, std::time::Duration, std::time::Duration) {
    let run = |scan_mode| {
        let opts = PregelConfig {
            executor: ExecutorMode::Sequential,
            scan_mode,
            // Hundred-superstep runs accrue shuffle lineage; periodic
            // checkpoints truncate it so the simulated cluster doesn't OOM.
            checkpoint_interval: Some(25),
            ..Default::default()
        };
        let wall = Instant::now();
        let r = sssp(pg, cluster, landmarks.to_vec(), 100_000, &opts).expect("fits in memory");
        (r, wall.elapsed())
    };
    let (dense, dense_wall) = run(ScanMode::Dense);
    let (auto, auto_wall) = run(ScanMode::Auto);
    // Same computation, same bill — the scan mode may only move the clock
    // on *our* wall, never inside the simulation.
    assert_eq!(dense.states, auto.states);
    assert_eq!(dense.sim, auto.sim);
    (auto, dense_wall, auto_wall)
}

fn print_clocks(dense_wall: std::time::Duration, auto_wall: std::time::Duration, bill: f64) {
    println!("\ndense scan:  {dense_wall:>10.2?} wall   (simulated bill {bill:.3}s)");
    println!("auto scan:   {auto_wall:>10.2?} wall   (simulated bill {bill:.3}s — identical)");
    println!(
        "frontier-driven speedup: {:.1}x",
        dense_wall.as_secs_f64() / auto_wall.as_secs_f64().max(1e-9)
    );
}

fn print_profile(report: &SimReport) {
    let profile = report.frontier_profile();
    println!(
        "frontier profile: peak {:.1}% active, mean {:.1}% active, \
         {} of {} supersteps below 1% active",
        100.0 * profile.peak_active_fraction,
        100.0 * profile.mean_active_fraction,
        profile.low_active_supersteps,
        profile.supersteps,
    );
}

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(14);
    let edge_factor: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2);
    let road_scale: f64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let cluster = ClusterConfig::paper_cluster();

    // ---- Part one: the collapse, traced on a scale-free graph ----------
    let config = cutfit::datagen::RmatConfig {
        scale,
        edges: (1u64 << scale) * edge_factor,
        ..Default::default()
    };
    let graph = cutfit::datagen::rmat(&config, 42);
    println!(
        "RMAT scale {scale}: {} vertices / {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Shortest paths propagate along *reverse* edges (each vertex learns
    // its distance TO the landmark), so the biggest in-degree hubs are the
    // landmarks every vertex with a path can actually reach.
    let mut by_in_degree: Vec<(u32, VertexId)> = graph
        .in_degrees()
        .iter()
        .enumerate()
        .map(|(v, &d)| (d, v as VertexId))
        .collect();
    by_in_degree.sort_unstable_by_key(|&(d, v)| (std::cmp::Reverse(d), v));
    let landmarks: Vec<VertexId> = by_in_degree.iter().take(3).map(|&(_, v)| v).collect();
    let pg = GraphXStrategy::EdgePartition2D.partition(&graph, 16);

    let (auto, dense_wall, auto_wall) = race(&pg, &cluster, &landmarks);
    println!(
        "\nSSSP from {} hub landmark(s): {} supersteps to convergence",
        landmarks.len(),
        auto.supersteps
    );
    println!("superstep    active vertices      scanned edges");
    for (i, s) in auto.sim.frontier_trace.iter().enumerate() {
        let bar_len = (s.active_fraction() * 40.0).ceil() as usize;
        println!(
            "{i:>9}  {:>10} ({:>5.1}%)  {:>9} ({:>5.1}%)  {}",
            s.active_vertices,
            100.0 * s.active_fraction(),
            s.scanned_edges,
            100.0 * s.scanned_fraction(),
            "#".repeat(bar_len),
        );
    }
    println!();
    print_profile(&auto.sim);
    print_clocks(dense_wall, auto_wall, auto.sim.total_seconds);

    // ---- Part two: the payoff, on the paper's road-network shape -------
    let profile = cutfit::datagen::DatasetProfile::road_net_pa();
    let road = profile.generate(road_scale, 42);
    println!(
        "\n{} at scale {road_scale}: {} vertices / {} edges",
        profile.name,
        road.num_vertices(),
        road.num_edges()
    );
    let road_pg = GraphXStrategy::EdgePartition2D.partition(&road, 16);

    let (auto, dense_wall, auto_wall) = race(&road_pg, &cluster, &[0]);
    println!(
        "SSSP from one corner: {} supersteps — a wavefront crawling across \
         the grid, almost all of them tail",
        auto.supersteps
    );
    print_profile(&auto.sim);
    print_clocks(dense_wall, auto_wall, auto.sim.total_seconds);
}
