//! Failure analysis: reproduce the paper's "Spark did not complete SSSP on
//! the road networks due to out of memory errors" and do the post-mortem
//! the paper couldn't — the simulated cluster reports exactly when and why
//! an executor died, and lets you test a fix (checkpointing) immediately.
//!
//! ```text
//! cargo run --release --example oom_postmortem
//! ```

use cutfit::prelude::*;

fn main() {
    let scale = 0.006;
    let graph = DatasetProfile::road_net_ca().generate(scale, 42);
    // Memory scales with the dataset so pressure matches the full-size run.
    let cluster = ClusterConfig::paper_cluster().with_memory_scale(scale);
    let pg = GraphXStrategy::EdgePartition2D.partition(&graph, 128);
    let landmarks = cutfit::algorithms::Sssp::pick_landmarks(graph.num_vertices(), 5, 7);

    println!(
        "SSSP to 5 landmarks on RoadNet-CA ({} vertices, diameter >> 120 supersteps)...",
        graph.num_vertices()
    );
    match cutfit::algorithms::sssp(
        &pg,
        &cluster,
        landmarks.clone(),
        10_000,
        &Default::default(),
    ) {
        Ok(r) => println!("unexpectedly converged in {} supersteps", r.supersteps),
        Err(SimError::OutOfMemory {
            executor,
            superstep,
            required_gb,
            capacity_gb,
        }) => {
            println!("died as in the paper:");
            println!("  executor {executor} exhausted its memory at superstep {superstep}");
            println!("  demand {required_gb:.2} GB vs usable capacity {capacity_gb:.2} GB");
            println!(
                "  diagnosis: un-checkpointed lineage — every superstep retains shuffle\n\
                 \x20 bookkeeping, and a {}-hop road network needs hundreds of supersteps",
                superstep
            );
        }
    }

    // The fix the GraphX documentation recommends: periodic checkpointing,
    // which truncates the lineage. Model it by zeroing the per-superstep
    // retention and re-running.
    let mut checkpointed = cluster.clone();
    checkpointed.cost.lineage_heap_fraction_per_superstep = 0.0;
    checkpointed.cost.lineage_retention = 0.0;
    checkpointed.name = "paper-cluster + checkpointing".to_string();
    match cutfit::algorithms::sssp(&pg, &checkpointed, landmarks, 10_000, &Default::default()) {
        Ok(r) => println!(
            "\nwith checkpointing modelled: converged in {} supersteps, \
             peak memory {:.2} GB, simulated {:.1}s",
            r.supersteps, r.sim.peak_executor_memory_gb, r.sim.total_seconds
        ),
        Err(e) => println!("\nstill failing: {e}"),
    }

    // For contrast: a bounded-iteration job on the same graph and budget
    // finishes comfortably — it is the superstep count, not the graph size,
    // that kills.
    let pr = cutfit::algorithms::pagerank(&pg, &cluster, 10, &Default::default())
        .expect("10 iterations never trip the lineage limit");
    println!(
        "\nPageRank on the same graph under the same budget: fine \
         (peak {:.2} GB over {} supersteps)",
        pr.sim.peak_executor_memory_gb, pr.sim.supersteps
    );
}
