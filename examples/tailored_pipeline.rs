//! The "cut to fit" workflow end to end: let the advisor tailor the
//! partitioning to the computation and the dataset, then verify the choice
//! against a naive default (GraphX's RandomVertexCut).
//!
//! ```text
//! cargo run --release --example tailored_pipeline
//! ```

use cutfit::prelude::*;
use cutfit::util::fmt::human_seconds;

fn run(algo: &Algorithm, graph: &Graph, strategy: GraphXStrategy, cluster: &ClusterConfig) -> f64 {
    algo.run(graph, &strategy, 128, cluster, ExecutorMode::Sequential)
        .expect("fits in memory")
        .sim
        .total_seconds
}

fn main() {
    let cluster = ClusterConfig::paper_cluster();
    let scale = 0.005;
    let advisor = Advisor::scaled(scale);

    for (profile, algo) in [
        (
            DatasetProfile::pocek(),
            Algorithm::PageRank { iterations: 10 },
        ),
        (
            DatasetProfile::follow_jul(),
            Algorithm::ConnectedComponents { max_iterations: 10 },
        ),
        (DatasetProfile::orkut(), Algorithm::Triangles),
    ] {
        let graph = profile.generate(scale, 42);
        println!(
            "=== {} on {} ({} edges) ===",
            algo.abbrev(),
            profile.name,
            graph.num_edges()
        );

        // Heuristic recommendation: from the paper's rules, no preprocessing.
        let heuristic = advisor.recommend(algo.class(), &graph, 128);
        println!("advisor (heuristic): {}", heuristic.strategy);
        println!("  rationale: {}", heuristic.rationale);

        // Measured recommendation: build candidates, compare the right metric.
        let measured = advisor.recommend_measured(algo.class(), &graph, 128, &[]);
        println!(
            "advisor (measured {}): {}  (ranking: {})",
            measured.metric,
            measured.strategy,
            measured
                .ranking
                .iter()
                .map(|(s, v)| format!("{s}={v:.0}"))
                .collect::<Vec<_>>()
                .join(", ")
        );

        // Verify against the naive default.
        let t_default = run(&algo, &graph, GraphXStrategy::RandomVertexCut, &cluster);
        let t_tailored = run(&algo, &graph, measured.strategy, &cluster);
        println!(
            "runtime: RVC default {}, tailored {} -> {:.1}% {}\n",
            human_seconds(t_default),
            human_seconds(t_tailored),
            (t_default - t_tailored).abs() / t_default * 100.0,
            if t_tailored <= t_default {
                "saved by tailoring"
            } else {
                "lost (metric was misleading here)"
            }
        );
    }
}
