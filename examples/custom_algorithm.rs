//! Writing your own Pregel program against the engine API: a two-hop
//! neighbourhood size estimator (each vertex learns how many vertices are
//! within two hops, following edges in both directions).
//!
//! Demonstrates the full `VertexProgram` surface: states, messages, merge,
//! activity, and the byte-sizing hooks the cost model uses.
//!
//! ```text
//! cargo run --release --example custom_algorithm
//! ```

use cutfit::prelude::*;

/// Superstep-phased state: after round 1 every vertex knows its degree;
/// after round 2 it knows the sum of its neighbours' degrees.
#[derive(Debug, Clone, Default)]
struct TwoHop {
    round: u8,
    neighbors: u64,
    two_hop_upper_bound: u64,
}

struct TwoHopProgram;

impl VertexProgram for TwoHopProgram {
    type State = TwoHop;
    type Msg = u64;

    fn name(&self) -> &'static str {
        "two-hop-size"
    }

    fn initial_state(&self, _v: VertexId, _ctx: &cutfit::engine::InitCtx<'_>) -> TwoHop {
        TwoHop::default()
    }

    fn initial_msg(&self) -> u64 {
        0
    }

    fn apply(&self, _v: VertexId, state: &TwoHop, msg: &u64) -> TwoHop {
        let mut next = state.clone();
        match state.round {
            0 => {}
            1 => next.neighbors = *msg,
            _ => next.two_hop_upper_bound = state.neighbors + *msg,
        }
        next.round = state.round.saturating_add(1);
        next
    }

    fn send(&self, t: &cutfit::engine::Triplet<'_, TwoHop>) -> Messages<u64> {
        match t.src_state.round.min(t.dst_state.round) {
            // Round 1: count edges (1 per direction) to learn degrees.
            1 => Messages::Both(1, 1),
            // Round 2: exchange degrees to bound the two-hop neighbourhood.
            2 => Messages::Both(t.dst_state.neighbors, t.src_state.neighbors),
            _ => Messages::None,
        }
    }

    fn merge(&self, a: u64, b: u64) -> u64 {
        a + b
    }

    fn always_active(&self) -> bool {
        true
    }
}

fn main() {
    let graph = DatasetProfile::youtube().generate(0.002, 7);
    let pg = GraphXStrategy::CanonicalRandomVertexCut.partition(&graph, 32);
    let result = run_pregel(
        &TwoHopProgram,
        &pg,
        &ClusterConfig::paper_cluster(),
        &PregelConfig {
            max_iterations: 2,
            ..Default::default()
        },
    )
    .expect("two supersteps fit easily");

    let mut top: Vec<(usize, u64)> = result
        .states
        .iter()
        .map(|s| s.two_hop_upper_bound)
        .enumerate()
        .collect();
    top.sort_by_key(|&(_, size)| std::cmp::Reverse(size));
    println!("largest two-hop neighbourhoods (upper bound, multigraph counting):");
    for (v, size) in top.iter().take(5) {
        println!("  vertex {v:>6}: ~{size} vertices within 2 hops");
    }
    println!(
        "ran {} supersteps, shipped {} messages, simulated {:.3}s",
        result.supersteps, result.sim.messages, result.sim.total_seconds
    );
}
