//! Quickstart: generate a social graph, partition it, run PageRank on the
//! simulated cluster, and inspect both the results and the bill.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cutfit::prelude::*;

fn main() {
    // 1. A YouTube-shaped social graph at 0.5 % of the real dataset's size,
    //    deterministically from a seed.
    let graph = DatasetProfile::youtube().generate(0.005, 42);
    println!(
        "generated {} vertices / {} edges (YouTube profile)",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Partition the edges with GraphX's 2D strategy into 64 vertex-cut
    //    partitions, and look at the paper's five metrics.
    let strategy = GraphXStrategy::EdgePartition2D;
    let partitioned = strategy.partition(&graph, 64);
    let metrics = PartitionMetrics::of(&partitioned);
    println!(
        "partitioned with {strategy}: balance {:.2}, {} cut vertices, comm cost {}",
        metrics.balance, metrics.cut, metrics.comm_cost
    );

    // 3. Run 10 PageRank iterations on the paper's 4-executor cluster.
    let cluster = ClusterConfig::paper_cluster();
    let result = cutfit::algorithms::pagerank(&partitioned, &cluster, 10, &Default::default())
        .expect("fits comfortably in memory");

    // 4. Results are exact; the simulated report tells you what it cost.
    let mut top: Vec<(VertexId, f64)> = result
        .states
        .iter()
        .enumerate()
        .map(|(v, &r)| (v as VertexId, r))
        .collect();
    top.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite ranks"));
    println!("top-3 ranked vertices:");
    for (v, rank) in top.iter().take(3) {
        println!("  vertex {v:>6}  rank {rank:.4}");
    }
    println!(
        "simulated execution: {:.3}s total ({:.3}s network, {:.3}s compute, {} messages)",
        result.sim.total_seconds,
        result.sim.network_seconds,
        result.sim.compute_seconds,
        result.sim.messages
    );
}
